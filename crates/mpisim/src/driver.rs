//! The co-simulation driver.
//!
//! Runs a [`JobSpec`] on a [`Cluster`] with one [`NodeRuntime`] per node.
//! The paper's applications are bulk-synchronous: every node executes the
//! same outer iteration and synchronises at its end, so the driver runs
//! each iteration on every node, then fills the stragglers' gap with idle
//! time (load-imbalance waiting).
//!
//! Between synchronisation barriers the nodes are independent — per-node
//! state (hardware model, RNG, runtime) never crosses a barrier — so
//! [`run_job`] steps disjoint chunks of (node, runtime) pairs on scoped
//! threads when the shared permit pool ([`crate::permits`]) has spare
//! threads, and falls back to the serial loop otherwise. Both paths
//! produce **bit-identical** [`JobReport`]s: the only cross-node value is
//! the per-iteration barrier horizon, which is an exact `u64` microsecond
//! maximum and therefore independent of evaluation order.

use crate::intercept::NodeRuntime;
use crate::job::{IterationSpec, JobSpec};
use crate::permits;
use ear_archsim::{Cluster, CounterSnapshot, Node, PhaseDemand, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Per-node summary of a finished job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport {
    /// Wall-clock seconds from job start to job end on this node.
    pub seconds: f64,
    /// Exact DC energy consumed over the job (J).
    pub dc_energy_j: f64,
    /// Exact package (RAPL PKG) energy over the job (J).
    pub pkg_energy_j: f64,
    /// Average DC power (W).
    pub avg_dc_power_w: f64,
    /// Average CPU frequency over the job (GHz, all cores).
    pub avg_cpu_ghz: f64,
    /// Average IMC (uncore) frequency over the job (GHz).
    pub avg_imc_ghz: f64,
    /// Job-average CPI.
    pub cpi: f64,
    /// Job-average memory bandwidth (GB/s).
    pub gbs: f64,
    /// Job-average AVX512 instruction fraction.
    pub vpi: f64,
}

/// Whole-job summary.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Application name.
    pub name: String,
    /// Per-node reports.
    pub nodes: Vec<NodeReport>,
}

impl JobReport {
    /// Job execution time: the slowest node (they end synchronised, so all
    /// are equal up to rounding).
    pub fn seconds(&self) -> f64 {
        self.nodes.iter().map(|n| n.seconds).fold(0.0, f64::max)
    }

    /// Total DC energy across nodes (J).
    pub fn total_dc_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.dc_energy_j).sum()
    }

    /// Total package energy across nodes (J).
    pub fn total_pkg_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.pkg_energy_j).sum()
    }

    /// Mean of a per-node metric.
    fn mean(&self, f: impl Fn(&NodeReport) -> f64) -> f64 {
        self.nodes.iter().map(f).sum::<f64>() / self.nodes.len().max(1) as f64
    }

    /// Average DC node power across nodes (W).
    pub fn avg_dc_power_w(&self) -> f64 {
        self.mean(|n| n.avg_dc_power_w)
    }

    /// Average CPU frequency across nodes (GHz).
    pub fn avg_cpu_ghz(&self) -> f64 {
        self.mean(|n| n.avg_cpu_ghz)
    }

    /// Average IMC frequency across nodes (GHz).
    pub fn avg_imc_ghz(&self) -> f64 {
        self.mean(|n| n.avg_imc_ghz)
    }

    /// Average CPI across nodes.
    pub fn cpi(&self) -> f64 {
        self.mean(|n| n.cpi)
    }

    /// Average memory bandwidth per node (GB/s).
    pub fn gbs(&self) -> f64 {
        self.mean(|n| n.gbs)
    }
}

/// Validates the (cluster, job, runtimes) triple. Panics on mismatch —
/// those are harness bugs, not recoverable conditions.
fn check_job<R>(cluster: &Cluster, job: &JobSpec, runtimes: &[R]) {
    if let Err(e) = job.validate() {
        panic!("invalid job: {e}");
    }
    assert_eq!(cluster.len(), job.nodes, "cluster size != job nodes");
    assert_eq!(runtimes.len(), job.nodes, "one runtime per node required");
}

/// Prices every iteration's explicit communication through the fabric
/// **once per iteration** (the fabric wait is identical on every node), so
/// the per-node stepping below never clones a demand or re-walks the
/// communication spec. Iterations without explicit communication keep
/// `None` and are stepped with their original demand by reference.
fn priced_demands(cluster: &Cluster, job: &JobSpec) -> Vec<Option<PhaseDemand>> {
    job.iterations
        .iter()
        .map(|iter| {
            iter.comm.as_ref().filter(|c| !c.is_empty()).map(|comm| {
                let mut demand = iter.demand.clone();
                demand.wait_seconds += comm.wait_seconds(&cluster.fabric, job.nodes);
                demand
            })
        })
        .collect()
}

/// One node's share of one bulk-synchronous iteration: the PMPI stream
/// (EARL coordinates per node through its master rank, so the runtime
/// receives one event stream per node), the priced work phase, and the
/// timer tick.
#[inline]
fn step_node<R: NodeRuntime>(
    node: &mut Node,
    rt: &mut R,
    iter: &IterationSpec,
    demand: &PhaseDemand,
) {
    for ev in &iter.events {
        rt.on_mpi_call(node, ev);
    }
    node.run_phase(demand);
    rt.on_tick(node);
}

/// Builds the per-node reports from the start-of-job snapshots.
fn build_report(cluster: &Cluster, job: &JobSpec, starts: &[CounterSnapshot]) -> JobReport {
    let mut nodes = Vec::with_capacity(cluster.len());
    for (i, start) in starts.iter().enumerate() {
        let end = cluster.node(i).snapshot();
        let d = end.delta(start);
        let seconds = d.seconds;
        nodes.push(NodeReport {
            seconds,
            dc_energy_j: end.dc_energy_exact_j - start.dc_energy_exact_j,
            pkg_energy_j: d.pkg_energy_j,
            avg_dc_power_w: if seconds > 0.0 {
                (end.dc_energy_exact_j - start.dc_energy_exact_j) / seconds
            } else {
                0.0
            },
            avg_cpu_ghz: d.avg_cpu_ghz(),
            avg_imc_ghz: d.avg_imc_ghz(),
            cpi: d.cpi(),
            gbs: d.gbs(),
            vpi: d.vpi(),
        });
    }

    JobReport {
        name: job.name.clone(),
        nodes,
    }
}

/// Runs `job` on `cluster` with one runtime per node, fanning the nodes
/// out across spare threads from the shared permit pool when any are
/// available (see [`crate::permits`]). The report is bit-identical to
/// [`run_job_serial`] at any thread count.
///
/// Panics if the job is invalid or the runtime/node counts disagree —
/// those are harness bugs, not recoverable conditions.
pub fn run_job<R: NodeRuntime + Send>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    check_job(cluster, job, runtimes);
    // The RAII guard gives the permits back even when a node panics inside
    // `drive_parallel` and the unwind crosses this frame.
    let held = permits::acquire_guard(job.nodes.saturating_sub(1));
    if held.count() == 0 {
        drive_serial(cluster, job, runtimes)
    } else {
        drive_parallel(cluster, job, runtimes, held.count() + 1)
    }
}

/// Runs `job` strictly serially on the calling thread, never touching the
/// permit pool. The executable specification for [`run_job`]'s determinism
/// guarantee (the parallel path must match this bit for bit) and the entry
/// point for runtimes that are not [`Send`].
pub fn run_job_serial<R: NodeRuntime>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    check_job(cluster, job, runtimes);
    drive_serial(cluster, job, runtimes)
}

fn drive_serial<R: NodeRuntime>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    let starts: Vec<_> = (0..cluster.len())
        .map(|i| cluster.node(i).snapshot())
        .collect();

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_start(cluster.node_mut(i), &job.name, job.ranks_per_node);
    }

    let priced = priced_demands(cluster, job);
    for (iter, priced_demand) in job.iterations.iter().zip(&priced) {
        let demand = priced_demand.as_ref().unwrap_or(&iter.demand);
        for (i, rt) in runtimes.iter_mut().enumerate() {
            step_node(cluster.node_mut(i), rt, iter, demand);
        }
        // Bulk-synchronous step: everyone waits for the slowest node.
        let horizon = cluster.horizon();
        cluster.synchronise_to(horizon);
    }

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_end(cluster.node_mut(i));
    }

    build_report(cluster, job, &starts)
}

fn drive_parallel<R: NodeRuntime + Send>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
    threads: usize,
) -> JobReport {
    let starts: Vec<_> = (0..cluster.len())
        .map(|i| cluster.node(i).snapshot())
        .collect();

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_start(cluster.node_mut(i), &job.name, job.ranks_per_node);
    }

    let priced = priced_demands(cluster, job);
    {
        let nodes = cluster.nodes_mut_slice();
        let chunk = nodes.len().div_ceil(threads.max(1));
        let node_chunks: Vec<&mut [Node]> = nodes.chunks_mut(chunk).collect();
        let rt_chunks: Vec<&mut [R]> = runtimes.chunks_mut(chunk).collect();
        let workers = node_chunks.len();
        let barrier = Barrier::new(workers);
        // Per-chunk barrier horizons plus the reduced global one, in exact
        // microseconds: `max` over `u64`s is order-independent, so the
        // synchronisation point equals the serial `cluster.horizon()`.
        let chunk_horizons: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let global_horizon = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for (w, (node_chunk, rt_chunk)) in node_chunks.into_iter().zip(rt_chunks).enumerate() {
                let barrier = &barrier;
                let chunk_horizons = &chunk_horizons;
                let global_horizon = &global_horizon;
                let priced = &priced;
                scope.spawn(move || {
                    step_chunk(
                        job,
                        priced,
                        node_chunk,
                        rt_chunk,
                        w,
                        barrier,
                        chunk_horizons,
                        global_horizon,
                    );
                });
            }
        });
    }

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_end(cluster.node_mut(i));
    }

    build_report(cluster, job, &starts)
}

/// One worker's whole-job loop over its disjoint chunk of (node, runtime)
/// pairs. The scope (and its threads) is created once per job, not once
/// per iteration; iterations meet at two in-loop barriers: one to publish
/// the chunk horizons, one to make the reduced global horizon visible
/// before any chunk synchronises to it.
#[allow(clippy::too_many_arguments)]
fn step_chunk<R: NodeRuntime>(
    job: &JobSpec,
    priced: &[Option<PhaseDemand>],
    nodes: &mut [Node],
    rts: &mut [R],
    w: usize,
    barrier: &Barrier,
    chunk_horizons: &[AtomicU64],
    global_horizon: &AtomicU64,
) {
    for (iter, priced_demand) in job.iterations.iter().zip(priced) {
        let demand = priced_demand.as_ref().unwrap_or(&iter.demand);
        for (node, rt) in nodes.iter_mut().zip(rts.iter_mut()) {
            step_node(node, rt, iter, demand);
        }
        let local = nodes.iter().map(|n| n.now().as_micros()).max().unwrap_or(0);
        chunk_horizons[w].store(local, Ordering::Relaxed);
        if barrier.wait().is_leader() {
            let horizon = chunk_horizons
                .iter()
                .map(|h| h.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            global_horizon.store(horizon, Ordering::Relaxed);
        }
        // Second barrier: no chunk reads the global horizon before the
        // leader has reduced it, and no chunk publishes the next
        // iteration's horizon before every chunk has read this one.
        barrier.wait();
        let t = SimTime(global_horizon.load(Ordering::Relaxed));
        for node in nodes.iter_mut() {
            let lag = t - node.now();
            if lag > 0.0 {
                node.run_idle(lag);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::{MpiCall, MpiEvent};
    use crate::intercept::{NullRuntime, RecordingRuntime};
    use ear_archsim::NodeConfig;

    fn small_job(iters: usize) -> JobSpec {
        JobSpec::homogeneous(
            "unit",
            2,
            40,
            vec![
                MpiEvent::new(MpiCall::Isend, 8192, 1),
                MpiEvent::new(MpiCall::Irecv, 8192, 1),
                MpiEvent::new(MpiCall::Wait, 0, 0),
                MpiEvent::collective(MpiCall::Allreduce, 64),
            ],
            PhaseDemand {
                instructions: 2e10,
                mem_bytes: 5e9,
                active_cores: 40,
                wait_seconds: 0.01,
                ..Default::default()
            },
            iters,
        )
    }

    fn null_runtimes(n: usize) -> Vec<NullRuntime> {
        vec![NullRuntime; n]
    }

    #[test]
    fn job_runs_and_reports() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 42);
        let job = small_job(20);
        let mut rts = null_runtimes(2);
        let report = run_job(&mut cluster, &job, &mut rts);
        assert_eq!(report.nodes.len(), 2);
        assert!(report.seconds() > 1.0);
        assert!(report.total_dc_energy_j() > 100.0);
        assert!(report.avg_dc_power_w() > 200.0);
        // Nodes end synchronised.
        let t0 = report.nodes[0].seconds;
        let t1 = report.nodes[1].seconds;
        assert!((t0 - t1).abs() < 1e-6, "{t0} vs {t1}");
    }

    #[test]
    fn interception_sees_every_event() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 43);
        let job = small_job(5);
        let mut rts = vec![RecordingRuntime::default(), RecordingRuntime::default()];
        run_job(&mut cluster, &job, &mut rts);
        // 5 iterations × 4 events.
        assert_eq!(rts[0].events.len(), 20);
        assert_eq!(rts[0].started, vec!["unit".to_string()]);
        assert_eq!(rts[0].ended, 1);
        assert_eq!(rts[1].events.len(), 20);
    }

    #[test]
    fn explicit_comm_is_priced_by_the_fabric() {
        use crate::job::CommSpec;
        let mk_job = || {
            let mut job = small_job(10);
            for it in &mut job.iterations {
                it.comm = Some(CommSpec {
                    collectives: vec![(MpiCall::Allreduce, 4 << 20)],
                    p2p_bytes: vec![1 << 20; 8],
                });
            }
            job
        };
        let run = |bw: f64| {
            let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 44);
            cluster.fabric.bandwidth_bytes = bw;
            let mut rts = null_runtimes(2);
            run_job(&mut cluster, &mk_job(), &mut rts).seconds()
        };
        let fast = run(12e9);
        let slow = run(1e9);
        assert!(
            slow > fast * 1.02,
            "fabric made no difference: {slow} vs {fast}"
        );
    }

    #[test]
    #[should_panic(expected = "cluster size != job nodes")]
    fn mismatched_cluster_panics() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 1, 1);
        let job = small_job(1);
        let mut rts = null_runtimes(1);
        run_job(&mut cluster, &job, &mut rts);
    }

    #[test]
    fn priced_demand_is_computed_once_per_iteration() {
        use crate::job::CommSpec;
        let mut job = small_job(4);
        job.iterations[1].comm = Some(CommSpec {
            collectives: vec![(MpiCall::Allreduce, 1 << 20)],
            p2p_bytes: vec![4096; 2],
        });
        job.iterations[2].comm = Some(CommSpec::default()); // empty: not priced
        let cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 45);
        let priced = priced_demands(&cluster, &job);
        assert_eq!(priced.len(), 4);
        assert!(priced[0].is_none());
        assert!(priced[2].is_none(), "empty comm spec must not be priced");
        assert!(priced[3].is_none());
        let d = priced[1].as_ref().expect("iteration 1 has communication");
        assert!(d.wait_seconds > job.iterations[1].demand.wait_seconds);
    }
}
