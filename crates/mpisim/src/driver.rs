//! The co-simulation driver.
//!
//! Runs a [`JobSpec`] on a [`Cluster`] with one [`NodeRuntime`] per node.
//! The paper's applications are bulk-synchronous: every node executes the
//! same outer iteration and synchronises at its end, so the driver runs
//! each iteration on every node, then fills the stragglers' gap with idle
//! time (load-imbalance waiting).

use crate::intercept::NodeRuntime;
use crate::job::JobSpec;
use ear_archsim::Cluster;

/// Per-node summary of a finished job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport {
    /// Wall-clock seconds from job start to job end on this node.
    pub seconds: f64,
    /// Exact DC energy consumed over the job (J).
    pub dc_energy_j: f64,
    /// Exact package (RAPL PKG) energy over the job (J).
    pub pkg_energy_j: f64,
    /// Average DC power (W).
    pub avg_dc_power_w: f64,
    /// Average CPU frequency over the job (GHz, all cores).
    pub avg_cpu_ghz: f64,
    /// Average IMC (uncore) frequency over the job (GHz).
    pub avg_imc_ghz: f64,
    /// Job-average CPI.
    pub cpi: f64,
    /// Job-average memory bandwidth (GB/s).
    pub gbs: f64,
    /// Job-average AVX512 instruction fraction.
    pub vpi: f64,
}

/// Whole-job summary.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Application name.
    pub name: String,
    /// Per-node reports.
    pub nodes: Vec<NodeReport>,
}

impl JobReport {
    /// Job execution time: the slowest node (they end synchronised, so all
    /// are equal up to rounding).
    pub fn seconds(&self) -> f64 {
        self.nodes.iter().map(|n| n.seconds).fold(0.0, f64::max)
    }

    /// Total DC energy across nodes (J).
    pub fn total_dc_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.dc_energy_j).sum()
    }

    /// Total package energy across nodes (J).
    pub fn total_pkg_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.pkg_energy_j).sum()
    }

    /// Mean of a per-node metric.
    fn mean(&self, f: impl Fn(&NodeReport) -> f64) -> f64 {
        self.nodes.iter().map(f).sum::<f64>() / self.nodes.len().max(1) as f64
    }

    /// Average DC node power across nodes (W).
    pub fn avg_dc_power_w(&self) -> f64 {
        self.mean(|n| n.avg_dc_power_w)
    }

    /// Average CPU frequency across nodes (GHz).
    pub fn avg_cpu_ghz(&self) -> f64 {
        self.mean(|n| n.avg_cpu_ghz)
    }

    /// Average IMC frequency across nodes (GHz).
    pub fn avg_imc_ghz(&self) -> f64 {
        self.mean(|n| n.avg_imc_ghz)
    }

    /// Average CPI across nodes.
    pub fn cpi(&self) -> f64 {
        self.mean(|n| n.cpi)
    }

    /// Average memory bandwidth per node (GB/s).
    pub fn gbs(&self) -> f64 {
        self.mean(|n| n.gbs)
    }
}

/// Runs `job` on `cluster` with one runtime per node.
///
/// Panics if the job is invalid or the runtime/node counts disagree —
/// those are harness bugs, not recoverable conditions.
pub fn run_job<R: NodeRuntime>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    if let Err(e) = job.validate() {
        panic!("invalid job: {e}");
    }
    assert_eq!(cluster.len(), job.nodes, "cluster size != job nodes");
    assert_eq!(runtimes.len(), job.nodes, "one runtime per node required");

    let starts: Vec<_> = (0..cluster.len())
        .map(|i| cluster.node(i).snapshot())
        .collect();
    let fabric = cluster.fabric.clone();

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_start(cluster.node_mut(i), &job.name, job.ranks_per_node);
    }

    for iter in &job.iterations {
        for (i, rt) in runtimes.iter_mut().enumerate() {
            let node = cluster.node_mut(i);
            // PMPI interception: EARL sees the calls of this iteration.
            // (EARL coordinates per node through its master rank, so the
            // runtime receives one stream per node.)
            for ev in &iter.events {
                rt.on_mpi_call(node, ev);
            }
            match iter.comm.as_ref().filter(|c| !c.is_empty()) {
                Some(comm) => {
                    // Price the explicit communication through the fabric
                    // and charge it as busy-waiting.
                    let mut demand = iter.demand.clone();
                    demand.wait_seconds += comm.wait_seconds(&fabric, job.nodes);
                    node.run_phase(&demand);
                }
                None => {
                    node.run_phase(&iter.demand);
                }
            }
            rt.on_tick(node);
        }
        // Bulk-synchronous step: everyone waits for the slowest node.
        let horizon = cluster.horizon();
        cluster.synchronise_to(horizon);
    }

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_end(cluster.node_mut(i));
    }

    let mut nodes = Vec::with_capacity(cluster.len());
    for (i, start) in starts.iter().enumerate() {
        let end = cluster.node(i).snapshot();
        let d = end.delta(start);
        let seconds = d.seconds;
        nodes.push(NodeReport {
            seconds,
            dc_energy_j: end.dc_energy_exact_j - start.dc_energy_exact_j,
            pkg_energy_j: d.pkg_energy_j,
            avg_dc_power_w: if seconds > 0.0 {
                (end.dc_energy_exact_j - start.dc_energy_exact_j) / seconds
            } else {
                0.0
            },
            avg_cpu_ghz: d.avg_cpu_ghz(),
            avg_imc_ghz: d.avg_imc_ghz(),
            cpi: d.cpi(),
            gbs: d.gbs(),
            vpi: d.vpi(),
        });
    }

    JobReport {
        name: job.name.clone(),
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::{MpiCall, MpiEvent};
    use crate::intercept::{NullRuntime, RecordingRuntime};
    use ear_archsim::{NodeConfig, PhaseDemand};

    fn small_job(iters: usize) -> JobSpec {
        JobSpec::homogeneous(
            "unit",
            2,
            40,
            vec![
                MpiEvent::new(MpiCall::Isend, 8192, 1),
                MpiEvent::new(MpiCall::Irecv, 8192, 1),
                MpiEvent::new(MpiCall::Wait, 0, 0),
                MpiEvent::collective(MpiCall::Allreduce, 64),
            ],
            PhaseDemand {
                instructions: 2e10,
                mem_bytes: 5e9,
                active_cores: 40,
                wait_seconds: 0.01,
                ..Default::default()
            },
            iters,
        )
    }

    fn null_runtimes(n: usize) -> Vec<NullRuntime> {
        vec![NullRuntime; n]
    }

    #[test]
    fn job_runs_and_reports() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 42);
        let job = small_job(20);
        let mut rts = null_runtimes(2);
        let report = run_job(&mut cluster, &job, &mut rts);
        assert_eq!(report.nodes.len(), 2);
        assert!(report.seconds() > 1.0);
        assert!(report.total_dc_energy_j() > 100.0);
        assert!(report.avg_dc_power_w() > 200.0);
        // Nodes end synchronised.
        let t0 = report.nodes[0].seconds;
        let t1 = report.nodes[1].seconds;
        assert!((t0 - t1).abs() < 1e-6, "{t0} vs {t1}");
    }

    #[test]
    fn interception_sees_every_event() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 43);
        let job = small_job(5);
        let mut rts = vec![RecordingRuntime::default(), RecordingRuntime::default()];
        run_job(&mut cluster, &job, &mut rts);
        // 5 iterations × 4 events.
        assert_eq!(rts[0].events.len(), 20);
        assert_eq!(rts[0].started, vec!["unit".to_string()]);
        assert_eq!(rts[0].ended, 1);
        assert_eq!(rts[1].events.len(), 20);
    }

    #[test]
    fn explicit_comm_is_priced_by_the_fabric() {
        use crate::job::CommSpec;
        let mk_job = || {
            let mut job = small_job(10);
            for it in &mut job.iterations {
                it.comm = Some(CommSpec {
                    collectives: vec![(MpiCall::Allreduce, 4 << 20)],
                    p2p_bytes: vec![1 << 20; 8],
                });
            }
            job
        };
        let run = |bw: f64| {
            let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 44);
            cluster.fabric.bandwidth_bytes = bw;
            let mut rts = null_runtimes(2);
            run_job(&mut cluster, &mk_job(), &mut rts).seconds()
        };
        let fast = run(12e9);
        let slow = run(1e9);
        assert!(
            slow > fast * 1.02,
            "fabric made no difference: {slow} vs {fast}"
        );
    }

    #[test]
    #[should_panic(expected = "cluster size != job nodes")]
    fn mismatched_cluster_panics() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 1, 1);
        let job = small_job(1);
        let mut rts = null_runtimes(1);
        run_job(&mut cluster, &job, &mut rts);
    }
}
