//! PMPI-style interception.
//!
//! On real systems EARL is preloaded into every MPI process and sees each
//! MPI call through the profiling interface. Here, a [`NodeRuntime`] is
//! attached per node and receives the same lifecycle events the EAR library
//! hooks: job start/end and every MPI call — with mutable access to the
//! node, because that is exactly what EARL uses the hooks for (reading
//! counters, writing frequency MSRs).

use crate::call::MpiEvent;
use ear_archsim::Node;

/// The per-node runtime attached to a job (EARL, a tracer, or nothing).
pub trait NodeRuntime {
    /// Called once before the first iteration (EARL's `MPI_Init` hook).
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks_on_node: usize);

    /// Called for every MPI call a local rank issues (the PMPI hook).
    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent);

    /// Called once after the last iteration (EARL's `MPI_Finalize` hook).
    fn on_job_end(&mut self, node: &mut Node);

    /// Called after every outer iteration completes, regardless of MPI
    /// activity. Non-MPI applications (OpenMP, CUDA kernels) have no PMPI
    /// stream; EARL falls back to time-guided operation (paper §III) and
    /// this is its timer tick. Default: ignored.
    fn on_tick(&mut self, node: &mut Node) {
        let _ = node;
    }
}

impl<T: NodeRuntime + ?Sized> NodeRuntime for Box<T> {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks_on_node: usize) {
        (**self).on_job_start(node, job_name, ranks_on_node);
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        (**self).on_mpi_call(node, event);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        (**self).on_job_end(node);
    }

    fn on_tick(&mut self, node: &mut Node) {
        (**self).on_tick(node);
    }
}

/// A runtime that does nothing — the paper's "No policy" baseline, where
/// the application runs at nominal frequency with hardware UFS.
#[derive(Debug, Default, Clone)]
pub struct NullRuntime;

impl NodeRuntime for NullRuntime {
    fn on_job_start(&mut self, _node: &mut Node, _job_name: &str, _ranks: usize) {}
    fn on_mpi_call(&mut self, _node: &mut Node, _event: &MpiEvent) {}
    fn on_job_end(&mut self, _node: &mut Node) {}
}

/// A runtime that records every event it sees; used in tests to verify the
/// interception contract.
#[derive(Debug, Default)]
pub struct RecordingRuntime {
    /// Job names seen at start.
    pub started: Vec<String>,
    /// All intercepted events in order.
    pub events: Vec<MpiEvent>,
    /// Number of job-end callbacks.
    pub ended: usize,
}

impl NodeRuntime for RecordingRuntime {
    fn on_job_start(&mut self, _node: &mut Node, job_name: &str, _ranks: usize) {
        self.started.push(job_name.to_string());
    }

    fn on_mpi_call(&mut self, _node: &mut Node, event: &MpiEvent) {
        self.events.push(*event);
    }

    fn on_job_end(&mut self, _node: &mut Node) {
        self.ended += 1;
    }
}
