//! MPI trace record and replay.
//!
//! Production EAR ships `eacct`-adjacent tooling to capture per-job MPI
//! traces and replay them offline (e.g. to tune DynAIS parameters without
//! re-running the application). [`TracingRuntime`] wraps any runtime and
//! records a timestamped [`Trace`]; [`Trace::replay_into`] feeds a recorded
//! event stream back into another runtime against a (possibly different)
//! node.
//!
//! Traces serialise to a line-oriented text format
//! (`<µs> <call-id> <bytes> <peer>`), deliberately trivial so external
//! tooling can parse it.

use crate::call::{MpiCall, MpiEvent};
use crate::intercept::NodeRuntime;
use ear_archsim::{Node, SimTime};
use ear_errors::EarError;

/// One traced call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time the call was intercepted.
    pub time: SimTime,
    /// The call.
    pub event: MpiEvent,
}

/// A recorded job trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Job name (from `MPI_Init`).
    pub job: String,
    /// Records in interception order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replays the event stream into `runtime` against `node` (start and
    /// end hooks included). Time is not reconstructed — the receiving
    /// runtime sees events back to back, which is what DynAIS tuning
    /// needs.
    pub fn replay_into<R: NodeRuntime>(&self, runtime: &mut R, node: &mut Node) {
        runtime.on_job_start(node, &self.job, 1);
        for r in &self.records {
            runtime.on_mpi_call(node, &r.event);
        }
        runtime.on_job_end(node);
    }

    /// Serialises to the line format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("# trace job={}\n", self.job);
        for r in &self.records {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                r.time.as_micros(),
                r.event.call.id(),
                r.event.bytes,
                r.event.peer
            );
        }
        out
    }

    /// Parses the line format (inverse of [`Trace::to_text`]).
    pub fn from_text(text: &str) -> Result<Self, EarError> {
        let mut trace = Trace::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(job) = rest.trim().strip_prefix("trace job=") {
                    trace.job = job.to_string();
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            let parse = |p: Option<&str>, what: &str| {
                p.ok_or_else(|| EarError::Parse {
                    line: i + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<u64>()
                .map_err(|_| EarError::Parse {
                    line: i + 1,
                    message: format!("bad {what}"),
                })
            };
            let us = parse(parts.next(), "timestamp")?;
            let call_id = parse(parts.next(), "call id")?;
            let bytes = parse(parts.next(), "bytes")?;
            let peer = parse(parts.next(), "peer")?;
            let call = call_from_id(call_id).ok_or_else(|| EarError::Parse {
                line: i + 1,
                message: format!("unknown call id {call_id}"),
            })?;
            trace.records.push(TraceRecord {
                time: SimTime(us),
                event: MpiEvent::new(call, bytes, peer),
            });
        }
        Ok(trace)
    }
}

fn call_from_id(id: u64) -> Option<MpiCall> {
    [
        MpiCall::Init,
        MpiCall::Finalize,
        MpiCall::Send,
        MpiCall::Recv,
        MpiCall::Isend,
        MpiCall::Irecv,
        MpiCall::Wait,
        MpiCall::Barrier,
        MpiCall::Bcast,
        MpiCall::Reduce,
        MpiCall::Allreduce,
        MpiCall::Alltoall,
        MpiCall::Allgather,
        MpiCall::Sendrecv,
    ]
    .into_iter()
    .find(|c| c.id() == id)
}

/// A runtime wrapper that records a trace while delegating to `inner`.
pub struct TracingRuntime<R> {
    inner: R,
    trace: Trace,
}

impl<R> TracingRuntime<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            trace: Trace::default(),
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the wrapper, returning the trace and the inner runtime.
    pub fn into_parts(self) -> (Trace, R) {
        (self.trace, self.inner)
    }
}

impl<R: NodeRuntime> NodeRuntime for TracingRuntime<R> {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks: usize) {
        self.trace.job = job_name.to_string();
        self.trace.records.clear();
        self.inner.on_job_start(node, job_name, ranks);
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.trace.records.push(TraceRecord {
            time: node.now(),
            event: *event,
        });
        self.inner.on_mpi_call(node, event);
    }

    fn on_tick(&mut self, node: &mut Node) {
        self.inner.on_tick(node);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        self.inner.on_job_end(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_job;
    use crate::intercept::{NullRuntime, RecordingRuntime};
    use crate::job::JobSpec;
    use ear_archsim::{Cluster, NodeConfig, PhaseDemand};

    fn job() -> JobSpec {
        JobSpec::homogeneous(
            "traced",
            1,
            4,
            vec![
                MpiEvent::new(MpiCall::Isend, 1024, 1),
                MpiEvent::collective(MpiCall::Allreduce, 8),
            ],
            PhaseDemand {
                instructions: 1e10,
                active_cores: 40,
                ..Default::default()
            },
            6,
        )
    }

    #[test]
    fn records_timestamps_and_events() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 1, 61);
        let mut rts = vec![TracingRuntime::new(NullRuntime)];
        run_job(&mut cluster, &job(), &mut rts);
        let trace = rts[0].trace();
        assert_eq!(trace.job, "traced");
        assert_eq!(trace.len(), 12);
        // Timestamps are monotone.
        for w in trace.records.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn text_roundtrip() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 1, 62);
        let mut rts = vec![TracingRuntime::new(NullRuntime)];
        run_job(&mut cluster, &job(), &mut rts);
        let trace = rts[0].trace().clone();
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parse_errors_are_located() {
        let e = Trace::from_text("1 2 3").unwrap_err().to_string();
        assert!(e.contains("line 1"), "{e}");
        let e = Trace::from_text("1 999 3 4").unwrap_err().to_string();
        assert!(e.contains("unknown call id"), "{e}");
    }

    #[test]
    fn replay_reaches_another_runtime() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 1, 63);
        let mut rts = vec![TracingRuntime::new(NullRuntime)];
        run_job(&mut cluster, &job(), &mut rts);
        let trace = rts[0].trace().clone();

        let mut sink = RecordingRuntime::default();
        let mut node = ear_archsim::Node::new(NodeConfig::sd530_6148(), 64);
        trace.replay_into(&mut sink, &mut node);
        assert_eq!(sink.events.len(), trace.len());
        assert_eq!(sink.started, vec!["traced".to_string()]);
        assert_eq!(sink.ended, 1);
    }
}
