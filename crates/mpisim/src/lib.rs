//! # ear-mpisim — simulated MPI with PMPI-style interception
//!
//! The paper's EARL intercepts MPI calls through the PMPI profiling
//! interface and is driven entirely by that event stream. This crate
//! provides the simulated equivalent: MPI call vocabulary and hashing
//! ([`MpiEvent::dynais_sample`]), per-node runtime hooks ([`NodeRuntime`]),
//! job descriptions ([`JobSpec`]) and the bulk-synchronous co-simulation
//! driver ([`run_job`]) that executes a job on an `ear-archsim` cluster
//! while delivering every MPI call to the attached runtimes.

#![warn(missing_docs)]

pub mod breakeven;
pub mod call;
pub mod driver;
pub mod intercept;
pub mod job;
pub mod permits;
pub mod trace;

pub use breakeven::Calibration;
pub use call::{MpiCall, MpiEvent};
pub use driver::{run_job, run_job_serial, JobReport, NodeReport};
pub use intercept::{NodeRuntime, NullRuntime, RecordingRuntime};
pub use job::{CommSpec, IterationSpec, JobSpec};
pub use permits::PermitGuard;
pub use trace::{Trace, TraceRecord, TracingRuntime};
