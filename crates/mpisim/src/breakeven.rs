//! Measured break-even gating for the node-parallel driver.
//!
//! Fanning a job's nodes out across threads only pays when the per-node
//! work per iteration amortises the synchronisation it buys: on a machine
//! with few spare cores (or a job with tiny iterations) the parallel path
//! is strictly slower than [`crate::run_job_serial`] — the 0.51× regression
//! this module exists to prevent. Instead of guessing, the driver
//! *measures*: a one-off calibration times the rendezvous gate, the scoped
//! thread spawn and a family of canonical probe jobs, and derives the node
//! count below which parallel stepping cannot win on this machine. The
//! result is persisted alongside the experiment result cache so later
//! processes skip the measurement.
//!
//! Resolution order for the gate, strongest first:
//!
//! 1. [`set_override`] — programmatic, used by tests, benches and the
//!    `earsim --mpi-break-even` flag;
//! 2. the `EAR_MPI_BREAK_EVEN` environment variable;
//! 3. the persisted calibration file (`mpi_break_even.v1`);
//! 4. a fresh [`calibrate_now`] measurement, persisted for next time.
//!
//! A threshold of `0` is special: it forces the full parallel machinery,
//! bypassing both the gate and the in-job autotuner. That is the handle CI
//! and the determinism tests use to pin the parallel path even on machines
//! where it would never be chosen on merit.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// First line of the persisted calibration file; bump on layout changes.
/// Unknown schemas are treated as a miss and recalibrated, never migrated.
pub const BREAKEVEN_SCHEMA: &str = "earsim-mpi-breakeven/v1";

/// File name of the persisted calibration, stored in the same directory as
/// the experiment result cache (`$EAR_CACHE_DIR`, else `target/earsim-cache`
/// when run from a workspace root, else the system temp dir).
pub const BREAKEVEN_FILE: &str = "mpi_break_even.v1";

/// Node counts the calibration probes, in order. A machine where parallel
/// stepping never wins inside this range gets a break-even one past twice
/// the largest probe: jobs beyond the measured range still reach the
/// in-job autotuner, which backs off per job if parallelism does not pay.
pub const PROBE_NODES: [usize; 3] = [2, 4, 8];

/// What the one-off measurement learned about this machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Smallest probed node count at which parallel stepping beat serial;
    /// jobs below it skip the parallel path entirely.
    pub break_even_nodes: usize,
    /// Cost of one horizon-gate rendezvous (ns), all workers together.
    pub sync_ns: f64,
    /// Cost of spawning one scoped worker thread (ns).
    pub spawn_ns: f64,
}

// usize::MAX encodes "no override"; any other value is the threshold.
static OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);
static ENV_THRESHOLD: OnceLock<Option<usize>> = OnceLock::new();
static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

/// Installs (or with `None` removes) a programmatic gate threshold that
/// outranks both `EAR_MPI_BREAK_EVEN` and the calibration. `Some(0)`
/// forces the parallel machinery unconditionally; `Some(n)` sends jobs
/// with fewer than `n` nodes down the serial path. `usize::MAX` is
/// reserved and treated as "no override" — use `usize::MAX - 1` to force
/// everything serial.
pub fn set_override(threshold: Option<usize>) {
    OVERRIDE.store(threshold.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// Parses an `EAR_MPI_BREAK_EVEN` value: a bare non-negative integer.
/// Anything else (including the reserved `usize::MAX`) is ignored.
fn parse_threshold(raw: &str) -> Option<usize> {
    let n: usize = raw.trim().parse().ok()?;
    (n != usize::MAX).then_some(n)
}

/// The active gate threshold, if any: the programmatic override, else the
/// environment variable. `None` means "use the calibrated break-even".
pub fn threshold() -> Option<usize> {
    match OVERRIDE.load(Ordering::Relaxed) {
        usize::MAX => *ENV_THRESHOLD.get_or_init(|| {
            std::env::var("EAR_MPI_BREAK_EVEN")
                .ok()
                .as_deref()
                .and_then(parse_threshold)
        }),
        n => Some(n),
    }
}

/// How [`crate::run_job`] should execute a job of `nodes` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Below break-even: run `drive_serial`, returning permits immediately.
    Serial,
    /// Threshold 0: full parallel machinery, no autotune back-off.
    Forced,
    /// At or above break-even: parallel with in-job chunk autotuning.
    Tuned,
}

/// Applies the gate to a job's node count. Only consults (and possibly
/// triggers) the calibration when no explicit threshold is set.
pub fn decision(nodes: usize) -> Decision {
    match threshold() {
        Some(0) => Decision::Forced,
        Some(n) if nodes < n => Decision::Serial,
        Some(_) => Decision::Tuned,
        None if nodes < calibration().break_even_nodes => Decision::Serial,
        None => Decision::Tuned,
    }
}

/// The machine calibration: loaded from the persisted file if present,
/// else measured once per process (and persisted, best-effort).
pub fn calibration() -> &'static Calibration {
    CALIBRATION.get_or_init(|| {
        let path = store_path();
        if let Some(cal) = path.as_deref().and_then(load) {
            return cal;
        }
        let cal = calibrate_now();
        if let Some(p) = path {
            persist(&p, &cal);
        }
        cal
    })
}

/// Runs the full measurement now, ignoring overrides and the persisted
/// file, and returns the result without storing it anywhere. The bench
/// suite's `mpi_break_even` row reports this fresh value.
pub fn calibrate_now() -> Calibration {
    let sync_ns = measure_sync_ns();
    let spawn_ns = measure_spawn_ns();
    let break_even_nodes = probe_break_even();
    Calibration {
        break_even_nodes,
        sync_ns,
        spawn_ns,
    }
}

/// Minimum of `reps` timed runs of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Times one horizon-gate rendezvous between two workers (ns). On a
/// single-core box this is dominated by the yield-driven context switch —
/// exactly the cost the autotuner must charge per iteration.
fn measure_sync_ns() -> f64 {
    use crate::driver::HorizonGate;
    const ROUNDS: u64 = 512;
    let secs = best_secs(3, || {
        let gate = HorizonGate::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for r in 0..ROUNDS {
                    if gate.arrive(r).is_none() {
                        return;
                    }
                }
            });
            for r in 0..ROUNDS {
                if gate.arrive(r).is_none() {
                    return;
                }
            }
        });
    });
    secs / ROUNDS as f64 * 1e9
}

/// Times spawning and joining one scoped no-op thread (ns).
fn measure_spawn_ns() -> f64 {
    const SPAWNS: usize = 8;
    let secs = best_secs(3, || {
        std::thread::scope(|scope| {
            for _ in 0..SPAWNS {
                scope.spawn(|| {});
            }
        });
    });
    secs / SPAWNS as f64 * 1e9
}

/// A canonical small bulk-synchronous job for the break-even probe: light
/// per-iteration work, so the probe errs toward serial — a gate that is
/// too eager to parallelise is the failure mode this module fixes.
fn probe_job(nodes: usize) -> crate::JobSpec {
    use crate::{MpiCall, MpiEvent};
    crate::JobSpec::homogeneous(
        "breakeven-probe",
        nodes,
        40,
        vec![
            MpiEvent::new(MpiCall::Isend, 65536, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 512),
        ],
        ear_archsim::PhaseDemand {
            instructions: 1e9,
            mem_bytes: 4e8,
            active_cores: 40,
            wait_seconds: 0.001,
            ..Default::default()
        },
        12,
    )
}

/// Races serial against forced-parallel stepping at each probe node count
/// and returns the first count where parallel wins by a clear margin.
fn probe_break_even() -> usize {
    let workers_cap = std::thread::available_parallelism().map_or(1, |n| n.get());
    for nodes in PROBE_NODES {
        let job = probe_job(nodes);
        let serial = best_secs(2, || {
            let mut cluster =
                ear_archsim::Cluster::new(ear_archsim::NodeConfig::sd530_6148(), nodes, 7777);
            let mut rts = vec![crate::NullRuntime; nodes];
            crate::run_job_serial(&mut cluster, &job, &mut rts);
        });
        let workers = nodes.min(workers_cap.max(2));
        let parallel = best_secs(2, || {
            let mut cluster =
                ear_archsim::Cluster::new(ear_archsim::NodeConfig::sd530_6148(), nodes, 7777);
            let mut rts = vec![crate::NullRuntime; nodes];
            crate::driver::drive_parallel_fixed(&mut cluster, &job, &mut rts, workers);
        });
        // Demand a 5% win: a dead heat at the probe shape will not survive
        // real jobs with the engine also competing for the cores.
        if parallel < serial * 0.95 {
            return nodes;
        }
    }
    // Parallel never won inside the probed range: gate everything up to
    // twice the largest probe, and let the in-job autotuner judge the rest.
    PROBE_NODES[PROBE_NODES.len() - 1] * 2 + 1
}

/// Directory the calibration persists in: `$EAR_CACHE_DIR` when set (the
/// same variable the experiment result cache honours), else
/// `target/earsim-cache` when the working directory has a `target/` (the
/// workspace root), else a directory under the system temp dir. `None`
/// only when every candidate is unusable.
fn store_path() -> Option<PathBuf> {
    let dir = match std::env::var("EAR_CACHE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => {
            let local = Path::new("target");
            if local.is_dir() {
                local.join("earsim-cache")
            } else {
                std::env::temp_dir().join("earsim-cache")
            }
        }
    };
    Some(dir.join(BREAKEVEN_FILE))
}

/// Parses a persisted calibration; any malformed or out-of-range content
/// is a miss (recalibrate), never an error.
fn parse(text: &str) -> Option<Calibration> {
    let mut lines = text.lines();
    if lines.next()?.trim() != BREAKEVEN_SCHEMA {
        return None;
    }
    let mut break_even_nodes: Option<usize> = None;
    let mut sync_ns: Option<f64> = None;
    let mut spawn_ns: Option<f64> = None;
    for line in lines {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("break_even_nodes"), Some(v), None) => break_even_nodes = v.parse().ok(),
            (Some("sync_ns"), Some(v), None) => sync_ns = v.parse().ok(),
            (Some("spawn_ns"), Some(v), None) => spawn_ns = v.parse().ok(),
            (None, _, _) => {}
            _ => return None,
        }
    }
    let cal = Calibration {
        break_even_nodes: break_even_nodes?,
        sync_ns: sync_ns?,
        spawn_ns: spawn_ns?,
    };
    let sane = cal.break_even_nodes >= 2
        && cal.sync_ns.is_finite()
        && cal.sync_ns >= 0.0
        && cal.spawn_ns.is_finite()
        && cal.spawn_ns >= 0.0;
    sane.then_some(cal)
}

fn load(path: &Path) -> Option<Calibration> {
    parse(&std::fs::read_to_string(path).ok()?)
}

/// Serialises a calibration in the persisted file format.
fn render(cal: &Calibration) -> String {
    format!(
        "{BREAKEVEN_SCHEMA}\nbreak_even_nodes {}\nsync_ns {:.1}\nspawn_ns {:.1}\n",
        cal.break_even_nodes, cal.sync_ns, cal.spawn_ns
    )
}

/// Best-effort write-through: temp file + rename so a concurrent reader
/// never sees a torn file; any I/O failure just skips persistence.
fn persist(path: &Path, cal: &Calibration) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!("{BREAKEVEN_FILE}.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, render(cal)).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_parsing_accepts_integers_only() {
        assert_eq!(parse_threshold("0"), Some(0));
        assert_eq!(parse_threshold(" 17 "), Some(17));
        assert_eq!(parse_threshold("4"), Some(4));
        assert_eq!(parse_threshold(""), None);
        assert_eq!(parse_threshold("two"), None);
        assert_eq!(parse_threshold("-3"), None);
        assert_eq!(parse_threshold("3.5"), None);
        assert_eq!(parse_threshold(&usize::MAX.to_string()), None);
    }

    #[test]
    fn persisted_format_round_trips() {
        let cal = Calibration {
            break_even_nodes: 4,
            sync_ns: 1234.5,
            spawn_ns: 56789.0,
        };
        let text = render(&cal);
        assert!(text.starts_with(BREAKEVEN_SCHEMA));
        let back = parse(&text).expect("round trip");
        assert_eq!(back.break_even_nodes, 4);
        assert!((back.sync_ns - 1234.5).abs() < 0.01);
        assert!((back.spawn_ns - 56789.0).abs() < 0.01);
    }

    #[test]
    fn corrupt_calibrations_are_misses() {
        assert!(parse("").is_none(), "empty file");
        assert!(parse("other-schema/v9\nbreak_even_nodes 2\n").is_none());
        assert!(
            parse(&format!("{BREAKEVEN_SCHEMA}\nbreak_even_nodes 2\n")).is_none(),
            "missing fields"
        );
        assert!(
            parse(&format!(
                "{BREAKEVEN_SCHEMA}\nbreak_even_nodes 1\nsync_ns 1\nspawn_ns 1\n"
            ))
            .is_none(),
            "break-even below 2 is nonsense"
        );
        assert!(
            parse(&format!(
                "{BREAKEVEN_SCHEMA}\nbreak_even_nodes 2\nsync_ns nan\nspawn_ns 1\n"
            ))
            .is_none(),
            "non-finite costs rejected"
        );
        assert!(
            parse(&format!(
                "{BREAKEVEN_SCHEMA}\nbreak_even_nodes 2 extra\nsync_ns 1\nspawn_ns 1\n"
            ))
            .is_none(),
            "trailing tokens rejected"
        );
    }

    #[test]
    fn decision_honours_the_override() {
        // The static is process-global; restore it before returning.
        set_override(Some(0));
        assert_eq!(decision(2), Decision::Forced);
        assert_eq!(decision(64), Decision::Forced);
        set_override(Some(6));
        assert_eq!(decision(2), Decision::Serial);
        assert_eq!(decision(5), Decision::Serial);
        assert_eq!(decision(6), Decision::Tuned);
        assert_eq!(decision(64), Decision::Tuned);
        set_override(None);
    }

    #[test]
    fn calibrate_now_is_sane() {
        let cal = calibrate_now();
        assert!(cal.break_even_nodes >= 2);
        assert!(cal.break_even_nodes <= PROBE_NODES[PROBE_NODES.len() - 1] * 2 + 1);
        assert!(cal.sync_ns.is_finite() && cal.sync_ns > 0.0);
        assert!(cal.spawn_ns.is_finite() && cal.spawn_ns > 0.0);
        // The round trip through the persisted format stays sane.
        assert!(parse(&render(&cal)).is_some());
    }
}
