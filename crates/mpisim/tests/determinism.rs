//! Parallel-vs-serial determinism for the co-simulation driver.
//!
//! `run_job` fans a job's nodes out across spare threads; the paper-facing
//! guarantee is that this is a pure performance knob: every `JobReport`
//! field on every node is **bit-identical** to the serial path, at any
//! node count, any thread count, and under adversarial load imbalance.
//! These tests pin that guarantee.

use ear_archsim::{Cluster, Node, NodeConfig, PhaseDemand};
use ear_mpisim::{
    breakeven, permits, run_job, run_job_serial, CommSpec, IterationSpec, JobReport, JobSpec,
    MpiCall, MpiEvent, NodeRuntime, NullRuntime, RecordingRuntime,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The permit pool and the break-even override are process-global; tests
/// that configure them must not interleave. (Cargo runs `#[test]`s on
/// parallel threads by default.)
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the break-even override (and the permit pool) on drop, so a
/// failing test cannot leak its forced threshold into the next one.
struct OverrideGuard;

impl OverrideGuard {
    /// Forces the break-even threshold for the guard's lifetime.
    /// `Some(0)` pins the full parallel machinery — these tests exist to
    /// exercise it, and on a small machine the measured gate would
    /// otherwise (correctly) route everything serial.
    fn force(threshold: Option<usize>) -> Self {
        breakeven::set_override(threshold);
        OverrideGuard
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        breakeven::set_override(None);
        permits::set_spare_threads(0);
    }
}

fn steady_job(nodes: usize, iterations: usize) -> JobSpec {
    JobSpec::homogeneous(
        "steady",
        nodes,
        40,
        vec![
            MpiEvent::new(MpiCall::Isend, 65536, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 512),
        ],
        PhaseDemand {
            instructions: 8e9,
            mem_bytes: 3e9,
            active_cores: 40,
            wait_seconds: 0.004,
            ..Default::default()
        },
        iterations,
    )
}

/// A worst-case load-imbalance job: iterations alternate between a heavy
/// compute phase, a memory-bound phase and a near-empty phase, with fabric
/// communication priced on some iterations only — so chunk horizons swing
/// wildly and a wrong barrier reduction would surface immediately.
fn straggler_job(nodes: usize, iterations: usize) -> JobSpec {
    let events = vec![
        MpiEvent::new(MpiCall::Isend, 1 << 20, 1),
        MpiEvent::new(MpiCall::Irecv, 1 << 20, 1),
        MpiEvent::new(MpiCall::Wait, 0, 0),
        MpiEvent::collective(MpiCall::Alltoall, 4096),
    ];
    let iterations = (0..iterations)
        .map(|i| {
            let demand = match i % 3 {
                0 => PhaseDemand {
                    instructions: 3e10,
                    mem_bytes: 1e9,
                    active_cores: 40,
                    ..Default::default()
                },
                1 => PhaseDemand {
                    instructions: 2e9,
                    mem_bytes: 2e10,
                    active_cores: 40,
                    wait_seconds: 0.05,
                    ..Default::default()
                },
                _ => PhaseDemand {
                    instructions: 1e8,
                    mem_bytes: 1e7,
                    active_cores: 4,
                    ..Default::default()
                },
            };
            let comm = (i % 2 == 0).then(|| CommSpec {
                collectives: vec![(MpiCall::Alltoall, 2 << 20)],
                p2p_bytes: vec![1 << 18; 6],
            });
            IterationSpec {
                events: events.clone(),
                demand,
                comm,
            }
        })
        .collect();
    JobSpec {
        name: "straggler".to_string(),
        nodes,
        ranks_per_node: 40,
        iterations,
    }
}

/// Asserts every field of every node report is bit-identical (`PartialEq`
/// on `f64` would already fail on any difference, but comparing bits makes
/// the intent — and the failure message — exact).
fn assert_bit_identical(serial: &JobReport, parallel: &JobReport) {
    assert_eq!(serial.name, parallel.name);
    assert_eq!(serial.nodes.len(), parallel.nodes.len());
    for (i, (s, p)) in serial.nodes.iter().zip(&parallel.nodes).enumerate() {
        let fields: [(&str, f64, f64); 9] = [
            ("seconds", s.seconds, p.seconds),
            ("dc_energy_j", s.dc_energy_j, p.dc_energy_j),
            ("pkg_energy_j", s.pkg_energy_j, p.pkg_energy_j),
            ("avg_dc_power_w", s.avg_dc_power_w, p.avg_dc_power_w),
            ("avg_cpu_ghz", s.avg_cpu_ghz, p.avg_cpu_ghz),
            ("avg_imc_ghz", s.avg_imc_ghz, p.avg_imc_ghz),
            ("cpi", s.cpi, p.cpi),
            ("gbs", s.gbs, p.gbs),
            ("vpi", s.vpi, p.vpi),
        ];
        for (name, sv, pv) in fields {
            assert_eq!(
                sv.to_bits(),
                pv.to_bits(),
                "node {i} field {name}: serial {sv} != parallel {pv}"
            );
        }
    }
}

fn run_serial(job: &JobSpec, seed: u64) -> JobReport {
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), job.nodes, seed);
    let mut rts = vec![NullRuntime; job.nodes];
    run_job_serial(&mut cluster, job, &mut rts)
}

fn run_parallel(job: &JobSpec, seed: u64, spare: usize) -> JobReport {
    let _force = OverrideGuard::force(Some(0));
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), job.nodes, seed);
    let mut rts = vec![NullRuntime; job.nodes];
    permits::set_spare_threads(spare);
    let report = run_job(&mut cluster, job, &mut rts);
    permits::set_spare_threads(0);
    report
}

#[test]
fn parallel_matches_serial_across_node_counts() {
    let _g = lock();
    for nodes in [1, 2, 8] {
        let job = steady_job(nodes, 30);
        let serial = run_serial(&job, 1000 + nodes as u64);
        // More threads than nodes, fewer threads than nodes, one extra.
        for spare in [1, 3, 16] {
            let parallel = run_parallel(&job, 1000 + nodes as u64, spare);
            assert_bit_identical(&serial, &parallel);
        }
    }
}

#[test]
fn parallel_matches_serial_on_adversarial_stragglers() {
    let _g = lock();
    for nodes in [2, 8] {
        let job = straggler_job(nodes, 24);
        let serial = run_serial(&job, 77);
        for spare in [1, 7] {
            let parallel = run_parallel(&job, 77, spare);
            assert_bit_identical(&serial, &parallel);
        }
    }
}

#[test]
fn heterogeneous_cluster_is_deterministic_too() {
    let _g = lock();
    // Mixed hardware is the worst case for chunk-horizon reductions: the
    // same demand takes genuinely different time on the two node types.
    let mk = || {
        Cluster::from_nodes(vec![
            Node::new(NodeConfig::sd530_6148(), 11),
            Node::new(NodeConfig::gpu_node_6142m(), 12),
            Node::new(NodeConfig::sd530_6148(), 13),
            Node::new(NodeConfig::gpu_node_6142m(), 14),
        ])
    };
    let mut job = straggler_job(4, 18);
    for it in &mut job.iterations {
        it.demand.active_cores = it.demand.active_cores.min(32);
    }
    let mut serial_cluster = mk();
    let mut rts = vec![NullRuntime; 4];
    let serial = run_job_serial(&mut serial_cluster, &job, &mut rts);

    let _force = OverrideGuard::force(Some(0));
    let mut parallel_cluster = mk();
    let mut rts = vec![NullRuntime; 4];
    permits::set_spare_threads(3);
    let parallel = run_job(&mut parallel_cluster, &job, &mut rts);
    permits::set_spare_threads(0);

    assert_bit_identical(&serial, &parallel);
}

#[test]
fn exhausted_pool_degrades_to_serial() {
    let _g = lock();
    let job = steady_job(4, 10);
    permits::set_spare_threads(0);
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 4, 5);
    let mut rts = vec![NullRuntime; 4];
    let adaptive = run_job(&mut cluster, &job, &mut rts);
    assert_eq!(
        permits::spare_threads(),
        0,
        "run_job must not leak permits it never took"
    );
    let serial = run_serial(&job, 5);
    assert_bit_identical(&serial, &adaptive);
}

#[test]
fn permits_are_returned_after_parallel_run() {
    let _g = lock();
    let _force = OverrideGuard::force(Some(0));
    let job = steady_job(8, 6);
    permits::set_spare_threads(5);
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 9);
    let mut rts = vec![NullRuntime; 8];
    run_job(&mut cluster, &job, &mut rts);
    assert_eq!(permits::spare_threads(), 5, "permits must be released");
    permits::set_spare_threads(0);
}

#[test]
fn runtimes_see_identical_event_streams_in_parallel() {
    let _g = lock();
    let job = straggler_job(8, 12);

    let mut serial_cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 21);
    let mut serial_rts: Vec<RecordingRuntime> =
        (0..8).map(|_| RecordingRuntime::default()).collect();
    run_job_serial(&mut serial_cluster, &job, &mut serial_rts);

    let _force = OverrideGuard::force(Some(0));
    let mut parallel_cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 21);
    let mut parallel_rts: Vec<RecordingRuntime> =
        (0..8).map(|_| RecordingRuntime::default()).collect();
    permits::set_spare_threads(7);
    run_job(&mut parallel_cluster, &job, &mut parallel_rts);
    permits::set_spare_threads(0);

    for (s, p) in serial_rts.iter().zip(&parallel_rts) {
        assert_eq!(s.started, p.started);
        assert_eq!(s.events, p.events);
        assert_eq!(s.ended, p.ended);
    }
}

/// Records the thread every `on_tick` ran on, and the spare-permit count
/// the first tick observed — enough to prove which path a job took and
/// what it did to the pool while running.
#[derive(Clone)]
struct ProbeRuntime {
    caller: std::thread::ThreadId,
    all_on_caller: Arc<AtomicBool>,
    first_tick_spare: Arc<AtomicUsize>,
    ticked: Arc<AtomicBool>,
}

impl ProbeRuntime {
    fn new() -> Self {
        Self {
            caller: std::thread::current().id(),
            all_on_caller: Arc::new(AtomicBool::new(true)),
            first_tick_spare: Arc::new(AtomicUsize::new(usize::MAX)),
            ticked: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl NodeRuntime for ProbeRuntime {
    fn on_job_start(&mut self, _node: &mut Node, _job_name: &str, _ranks: usize) {}
    fn on_mpi_call(&mut self, _node: &mut Node, _event: &MpiEvent) {}
    fn on_job_end(&mut self, _node: &mut Node) {}
    fn on_tick(&mut self, _node: &mut Node) {
        if std::thread::current().id() != self.caller {
            self.all_on_caller.store(false, Ordering::SeqCst);
        }
        if !self.ticked.swap(true, Ordering::SeqCst) {
            self.first_tick_spare
                .store(permits::spare_threads(), Ordering::SeqCst);
        }
    }
}

#[test]
fn break_even_gate_forces_serial_and_returns_permits_immediately() {
    let _g = lock();
    // A threshold above the job's node count (the programmatic twin of
    // `EAR_MPI_BREAK_EVEN=1000`) must route a parallel-capable job down
    // the serial path with its permits back in the pool *while it runs*.
    let _force = OverrideGuard::force(Some(1000));
    let job = steady_job(8, 10);
    permits::set_spare_threads(7);
    let probe = ProbeRuntime::new();
    let mut rts = vec![probe.clone(); 8];
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 31);
    let gated = run_job(&mut cluster, &job, &mut rts);
    assert!(
        probe.all_on_caller.load(Ordering::SeqCst),
        "below break-even every node must step on the calling thread"
    );
    assert_eq!(
        probe.first_tick_spare.load(Ordering::SeqCst),
        7,
        "the gate must return permits before stepping, not on job end"
    );
    assert_eq!(permits::spare_threads(), 7);
    permits::set_spare_threads(0);
    let serial = run_serial(&job, 31);
    assert_bit_identical(&serial, &gated);
}

#[test]
fn surplus_permits_are_released_while_the_job_runs() {
    let _g = lock();
    let _force = OverrideGuard::force(Some(0));
    // 8 nodes with 6 threads: chunks of ceil(8/7)=2 make only 4 workers,
    // so 3 of the 6 acquired permits are surplus and must be back in the
    // pool before the first iteration, not after the job.
    let job = steady_job(8, 8);
    permits::set_spare_threads(6);
    let probe = ProbeRuntime::new();
    let mut rts = vec![probe.clone(); 8];
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 33);
    let parallel = run_job(&mut cluster, &job, &mut rts);
    assert!(
        probe.first_tick_spare.load(Ordering::SeqCst) >= 3,
        "surplus permits must be released up front, saw {}",
        probe.first_tick_spare.load(Ordering::SeqCst)
    );
    assert_eq!(permits::spare_threads(), 6, "all permits back on job end");
    permits::set_spare_threads(0);
    let serial = run_serial(&job, 33);
    assert_bit_identical(&serial, &parallel);
}

/// Drains the whole permit pool from inside the job, the first time any
/// node ticks — the persistent worker set must be immune to the engine
/// taking the machine back mid-flight.
#[derive(Clone)]
struct StarveRuntime {
    fired: Arc<AtomicBool>,
}

impl NodeRuntime for StarveRuntime {
    fn on_job_start(&mut self, _node: &mut Node, _job_name: &str, _ranks: usize) {}
    fn on_mpi_call(&mut self, _node: &mut Node, _event: &MpiEvent) {}
    fn on_job_end(&mut self, _node: &mut Node) {}
    fn on_tick(&mut self, _node: &mut Node) {
        if !self.fired.swap(true, Ordering::SeqCst) {
            permits::set_spare_threads(0);
        }
    }
}

#[test]
fn persistent_workers_survive_permit_starvation_mid_job() {
    let _g = lock();
    let _force = OverrideGuard::force(Some(0));
    let job = straggler_job(8, 20);
    permits::set_spare_threads(7);
    let fired = Arc::new(AtomicBool::new(false));
    let mut rts = vec![
        StarveRuntime {
            fired: Arc::clone(&fired)
        };
        8
    ];
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 55);
    let parallel = run_job(&mut cluster, &job, &mut rts);
    assert!(fired.load(Ordering::SeqCst), "the starver must have fired");
    // The job held 7 permits; the starver zeroed the pool mid-job; on job
    // end exactly those 7 held permits come back.
    assert_eq!(
        permits::spare_threads(),
        7,
        "held permits must be released even after mid-job pool churn"
    );
    permits::set_spare_threads(0);
    let mut serial_rts = vec![
        StarveRuntime {
            fired: Arc::new(AtomicBool::new(true))
        };
        8
    ];
    let mut serial_cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 55);
    let serial = run_job_serial(&mut serial_cluster, &job, &mut serial_rts);
    assert_bit_identical(&serial, &parallel);
}

/// Panics on one node's tick of one iteration, on whatever thread that
/// node's chunk landed.
#[derive(Clone)]
struct PanicRuntime {
    at_tick: usize,
    ticks: usize,
    armed: bool,
}

impl NodeRuntime for PanicRuntime {
    fn on_job_start(&mut self, _node: &mut Node, _job_name: &str, _ranks: usize) {}
    fn on_mpi_call(&mut self, _node: &mut Node, _event: &MpiEvent) {}
    fn on_job_end(&mut self, _node: &mut Node) {}
    fn on_tick(&mut self, _node: &mut Node) {
        self.ticks += 1;
        if self.armed && self.ticks == self.at_tick {
            panic!("runtime exploded");
        }
    }
}

#[test]
fn panicking_worker_returns_permits_and_poisons_the_job() {
    let _g = lock();
    let _force = OverrideGuard::force(Some(0));
    let job = steady_job(8, 12);
    permits::set_spare_threads(7);
    let mut rts: Vec<PanicRuntime> = (0..8)
        .map(|i| PanicRuntime {
            at_tick: 3,
            ticks: 0,
            armed: i == 6, // a node on a spawned worker's chunk
        })
        .collect();
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 8, 77);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job(&mut cluster, &job, &mut rts)
    }));
    let payload = outcome.expect_err("the worker panic must propagate to the caller");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or_else(|| payload.downcast_ref::<String>().map_or("", |s| s.as_str()));
    assert_eq!(
        message, "runtime exploded",
        "the original panic payload must survive the gate"
    );
    assert_eq!(
        permits::spare_threads(),
        7,
        "every permit must be back after a worker panic"
    );
    permits::set_spare_threads(0);
}
