//! Property-based tests for the hardware substrate.
//!
//! These pin the invariants the EAR policies rely on: monotonicity of the
//! time/power surfaces, MSR bit-layout roundtrips, RAPL wrap safety and the
//! firmware UFS respecting its programmed limits.

use ear_archsim::config::{HwUfsParams, NodeConfig};
use ear_archsim::hwufs::{HwUfsController, HwUfsInput};
use ear_archsim::msr::{pack_uncore_ratio_limit, rapl_counter_delta, unpack_uncore_ratio_limit};
use ear_archsim::perf::{work_time, work_time_domains};
use ear_archsim::power::{pkg_power, SocketPowerInput};
use ear_archsim::{Node, PerfParams, PhaseDemand, PowerParams};
use proptest::prelude::*;

fn arb_demand() -> impl Strategy<Value = PhaseDemand> {
    (
        1e9..1e12f64, // instructions
        0.0..1.0f64,  // vpi
        0.0..2e11f64, // mem bytes
        0.2..4.0f64,  // cpi_core
        1.0..12.0f64, // uncore lat cycles
        0.0..1.0f64,  // overlap
        1usize..=40,  // active cores
        0.3..1.0f64,  // activity
    )
        .prop_map(|(inst, vpi, bytes, cpi, lat, ov, cores, act)| PhaseDemand {
            instructions: inst,
            avx512_fraction: vpi,
            mem_bytes: bytes,
            cpi_core: cpi,
            uncore_lat_cycles: lat,
            mem_overlap: ov,
            active_cores: cores,
            activity: act,
            ..Default::default()
        })
}

proptest! {
    #[test]
    fn uncore_ratio_limit_roundtrips(min in 0u8..=0x7F, max in 0u8..=0x7F) {
        let packed = pack_uncore_ratio_limit(min, max);
        prop_assert_eq!(unpack_uncore_ratio_limit(packed), (min, max));
    }

    #[test]
    fn rapl_delta_never_negative_and_bounded(a in any::<u64>(), b in any::<u64>()) {
        let d = rapl_counter_delta(a, b);
        prop_assert!(d < (1u64 << 32));
    }

    #[test]
    fn work_time_monotone_decreasing_in_core_freq(d in arb_demand(), f1 in 1.0..2.39f64) {
        let p = PerfParams::default();
        let f2 = f1 + 0.01;
        let t1 = work_time(&p, &d, f1 * 1e9, 2.4).work_s;
        let t2 = work_time(&p, &d, f2 * 1e9, 2.4).work_s;
        prop_assert!(t2 <= t1 + 1e-12, "t({f1})={t1} < t({f2})={t2}");
    }

    #[test]
    fn work_time_monotone_decreasing_in_uncore_freq(d in arb_demand(), u1 in 1.2..2.39f64) {
        let p = PerfParams::default();
        let u2 = u1 + 0.01;
        let t1 = work_time(&p, &d, 2.4e9, u1).work_s;
        let t2 = work_time(&p, &d, 2.4e9, u2).work_s;
        prop_assert!(t2 <= t1 + 1e-12);
    }

    #[test]
    fn work_time_positive_and_finite(d in arb_demand(), f in 1.0..2.4f64, u in 1.2..2.4f64) {
        let p = PerfParams::default();
        let t = work_time(&p, &d, f * 1e9, u).work_s;
        prop_assert!(t.is_finite());
        prop_assert!(t > 0.0);
    }

    #[test]
    fn pkg_power_monotone_in_both_frequencies(
        fc in 1.0..2.39f64,
        fu in 1.2..2.39f64,
        util in 0.0..1.0f64,
        act in 0.1..1.0f64,
    ) {
        let p = PowerParams::default();
        let mk = |fc: f64, fu: f64| SocketPowerInput {
            active_cores: 20,
            total_cores: 20,
            f_core_ghz: fc,
            activity: act,
            avx512_fraction: 0.0,
            f_uncore_ghz: fu,
            mem_util: util,
        };
        let base = pkg_power(&p, &mk(fc, fu));
        prop_assert!(base.is_finite() && base > 0.0);
        prop_assert!(pkg_power(&p, &mk(fc + 0.01, fu)) >= base);
        prop_assert!(pkg_power(&p, &mk(fc, fu + 0.01)) >= base);
    }

    #[test]
    fn hwufs_never_escapes_limits(
        min in 12u8..=24,
        span in 0u8..=12,
        mem in 0.0..1.0f64,
        busy in 0.0..1.0f64,
        fast in prop::sample::select(vec![0u64, 1_200_000, 2_000_000, 2_400_000, 2_600_000]),
        steps in 1usize..200,
    ) {
        let max = (min + span).min(24);
        let mut c = HwUfsController::new(HwUfsParams::default(), 24);
        let input = HwUfsInput {
            fastest_active_khz: fast,
            nominal_khz: 2_400_000,
            mem_util: mem,
            busy_fraction: busy,
            epb: 6,
            bias: 0.0,
        };
        for _ in 0..steps {
            let r = c.advance(0.01, &input, min, max);
            prop_assert!(r >= min && r <= max, "ratio {r} outside [{min},{max}]");
        }
    }

    #[test]
    fn node_counters_are_monotonic(seed in any::<u64>(), n_phases in 1usize..4) {
        let mut node = Node::new(NodeConfig::sd530_6148(), seed);
        let d = PhaseDemand {
            instructions: 5e10,
            mem_bytes: 10e9,
            active_cores: 40,
            ..Default::default()
        };
        let mut prev = node.snapshot();
        for _ in 0..n_phases {
            node.run_phase(&d);
            let now = node.snapshot();
            for (a, b) in now.sockets.iter().zip(&prev.sockets) {
                prop_assert!(a.instructions >= b.instructions);
                prop_assert!(a.core_cycles >= b.core_cycles);
                prop_assert!(a.pkg_energy_uj >= b.pkg_energy_uj);
                prop_assert!(a.cas_transactions >= b.cas_transactions);
            }
            prop_assert!(now.time >= prev.time);
            prop_assert!(now.dc_energy_exact_j >= prev.dc_energy_exact_j);
            prev = now;
        }
    }

    #[test]
    fn work_time_domains_collapses_to_scalar_at_one_domain(
        d in arb_demand(),
        fc in 1.0..2.6f64,
        fu in 1.2..2.4f64,
    ) {
        // The per-domain surface at N=1 must be the pre-refactor scalar
        // implementation bit for bit — same breakdown, same total — or the
        // experiment tables' byte-identity claim cannot hold.
        let p = PerfParams::default();
        let scalar = work_time(&p, &d, fc * 1e9, fu);
        let vector = work_time_domains(&p, &d, fc * 1e9, &[fu], &[1.0]);
        prop_assert_eq!(scalar, vector);
    }

    #[test]
    fn single_domain_node_is_bit_identical_across_addressing(
        seed in any::<u64>(),
        sweeps in prop::collection::vec(
            (
                prop::sample::select(vec![1_200_000u64, 1_900_000, 2_400_000, 2_600_000]),
                12u8..=24,
                0u8..=12,
            ),
            1..4,
        ),
    ) {
        // On a 1-domain part the TPMI per-domain block is a pure alias of
        // the legacy scalar path: driving the node through
        // `set_uncore_limits_dom(0, ..)` with the traffic split pinned to
        // domain 0 must replay the legacy `set_uncore_limits(..)` run with
        // uniform routing exactly — event stream, counters and energy all
        // bit-identical. This is the N=1 compatibility contract of the
        // domain refactor.
        let cfg = NodeConfig::sd530_6148();
        let mut legacy = Node::new(cfg.clone(), seed);
        let mut tpmi = Node::new(cfg, seed);
        prop_assert_eq!(legacy.uncore_domain_count(), 1);

        for (khz, min, span) in sweeps {
            let max = (min + span).min(24);
            let ps = legacy.config.pstates.pstate_for_khz(khz);
            let demand = PhaseDemand {
                instructions: 4e10,
                mem_bytes: 6e9,
                active_cores: 40,
                wait_seconds: 0.05,
                ..Default::default()
            };

            legacy.set_cpu_pstate(ps);
            legacy
                .set_uncore_limits(min, max)
                .map_err(|e| format!("legacy write: {e:?}"))?;
            let out_legacy = legacy.run_phase(&demand);

            tpmi.set_cpu_pstate(ps);
            tpmi.set_uncore_limits_dom(0, min, max)
                .map_err(|e| format!("tpmi write: {e:?}"))?;
            let out_tpmi = tpmi.run_phase(&PhaseDemand {
                domain_mem_frac: Some([1.0, 0.0, 0.0, 0.0]),
                ..demand
            });

            prop_assert_eq!(out_legacy, out_tpmi);
            // Both read paths observe the same programmed limits.
            prop_assert_eq!(legacy.uncore_limits(0, 0), (min, max));
            prop_assert_eq!(tpmi.uncore_limits(0, 0), (min, max));
        }

        let (a, b) = (legacy.snapshot(), tpmi.snapshot());
        prop_assert_eq!(a.time, b.time);
        prop_assert_eq!(a.dc_energy_mj, b.dc_energy_mj);
        prop_assert_eq!(
            a.dc_energy_exact_j.to_bits(),
            b.dc_energy_exact_j.to_bits(),
            "dc energy diverged: {} vs {}",
            a.dc_energy_exact_j,
            b.dc_energy_exact_j
        );
        for (sa, sb) in a.sockets.iter().zip(b.sockets.iter()) {
            prop_assert_eq!(sa, sb);
        }
    }

    #[test]
    fn energy_equals_integrated_power(seed in any::<u64>()) {
        // DC energy must always exceed pkg energy (DC includes platform).
        let mut node = Node::new(NodeConfig::sd530_6148(), seed);
        let d = PhaseDemand {
            instructions: 2e11,
            mem_bytes: 30e9,
            active_cores: 40,
            ..Default::default()
        };
        node.run_phase(&d);
        let snap = node.snapshot();
        let pkg_j: f64 = snap.sockets.iter().map(|s| s.pkg_energy_uj as f64 * 1e-6).sum();
        prop_assert!(snap.dc_energy_exact_j > pkg_j);
    }
}
