//! Quantum fast-forward vs plain 10 ms stepping.
//!
//! `NodeConfig::fast_forward` analytically integrates the remainder of a
//! phase once the firmware UFS controller has settled on every socket. The
//! one-shot integration is equal to the stepped sum in exact arithmetic but
//! not bit-identical (N accumulator adds vs one multiply), so:
//!
//! * across pstate and uncore-limit sweeps the two trajectories must agree
//!   to ~1-ulp-scale relative tolerance on every counter and energy, and
//! * when the controller never settles during any phase, fast-forward never
//!   triggers and the runs must be *exactly* equal, bit for bit.
//!
//! Dependency-free on purpose: this guards the experiment tables'
//! bit-reproducibility claim, so it must run everywhere `cargo test` runs.

use ear_archsim::{Node, NodeConfig, PhaseDemand};

const SEED: u64 = 7;

fn pair(min_r: u8, max_r: u8) -> (Node, Node) {
    let mut cfg = NodeConfig::sd530_6148();
    cfg.uncore_min_ratio = min_r;
    cfg.uncore_max_ratio = max_r;
    let stepped = Node::new(cfg.clone(), SEED);
    cfg.fast_forward = true;
    let fast = Node::new(cfg, SEED);
    (stepped, fast)
}

fn rel_close(a: f64, b: f64, tol: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1.0);
    // `+ 1.0`: integer counters truncate, so values straddling a count
    // boundary legitimately differ by one count on top of the relative term.
    assert!(
        (a - b).abs() <= tol * scale + 1.0,
        "{what}: {a} vs {b} (rel {})",
        (a - b).abs() / scale
    );
}

/// Runs the same mixed workload on both nodes and compares end state.
fn run_and_compare(mut stepped: Node, mut fast: Node, khz: u64) {
    let ps = stepped.config.pstates.pstate_for_khz(khz);
    let work = PhaseDemand {
        instructions: 2.0e11,
        mem_bytes: 8.0e9,
        active_cores: 40,
        wait_seconds: 0.25,
        wait_busy: true,
        ..Default::default()
    };
    let streaming = PhaseDemand {
        instructions: 4.0e10,
        mem_bytes: 4.0e10,
        active_cores: 40,
        ..Default::default()
    };
    for node in [&mut stepped, &mut fast] {
        node.set_cpu_pstate(ps);
        node.run_phase(&work);
        node.run_idle(0.3);
        node.run_phase(&streaming);
        node.run_phase(&work);
    }

    let a = stepped.now().as_secs();
    let b = fast.now().as_secs();
    assert!(
        (a - b).abs() <= 5e-6,
        "end times diverged: {a} vs {b} ({} s)",
        (a - b).abs()
    );

    let tol = 1e-9;
    let (s, f) = (stepped.snapshot(), fast.snapshot());
    for (i, (sc, fc)) in s.sockets.iter().zip(f.sockets.iter()).enumerate() {
        rel_close(
            sc.instructions as f64,
            fc.instructions as f64,
            tol,
            &format!("socket {i} instructions"),
        );
        rel_close(
            sc.core_cycles as f64,
            fc.core_cycles as f64,
            tol,
            &format!("socket {i} core_cycles"),
        );
        rel_close(
            sc.aperf_kcycles as f64,
            fc.aperf_kcycles as f64,
            tol,
            &format!("socket {i} aperf"),
        );
        rel_close(
            sc.mperf_kcycles as f64,
            fc.mperf_kcycles as f64,
            tol,
            &format!("socket {i} mperf"),
        );
        rel_close(
            sc.cas_transactions as f64,
            fc.cas_transactions as f64,
            tol,
            &format!("socket {i} cas"),
        );
        rel_close(
            sc.uclk_kcycles as f64,
            fc.uclk_kcycles as f64,
            tol,
            &format!("socket {i} uclk"),
        );
        rel_close(
            sc.pkg_energy_uj as f64,
            fc.pkg_energy_uj as f64,
            tol,
            &format!("socket {i} pkg energy"),
        );
        rel_close(
            sc.dram_energy_uj as f64,
            fc.dram_energy_uj as f64,
            tol,
            &format!("socket {i} dram energy"),
        );
    }
    rel_close(
        stepped.dc_energy_exact_j(),
        fast.dc_energy_exact_j(),
        tol,
        "dc energy",
    );
}

#[test]
fn tolerance_across_pstate_sweep() {
    // Sweep requested CPU frequency across the DVFS range used by the
    // paper's policies; fast-forward fires in the settled tail of every
    // phase yet the trajectories stay within ulp-scale tolerance.
    for khz in [2_400_000, 2_200_000, 2_000_000, 1_800_000] {
        let (stepped, fast) = pair(12, 24);
        run_and_compare(stepped, fast, khz);
    }
}

#[test]
fn tolerance_across_uncore_sweep() {
    // Sweep the software-programmed uncore window (eUFS pins min == max).
    for (min_r, max_r) in [(12u8, 24u8), (18, 18), (14, 20), (24, 24)] {
        let (mut stepped, mut fast) = pair(12, 24);
        stepped.set_uncore_limits(min_r, max_r).unwrap();
        fast.set_uncore_limits(min_r, max_r).unwrap();
        run_and_compare(stepped, fast, 2_100_000);
    }
}

#[test]
fn exactly_equal_when_controller_never_settles() {
    // Alternate 30 ms spin phases between a sub-nominal pstate (uncore
    // target ~14) and nominal (target = max 24). Each transition needs
    // 50-60 ms of slew at 2 ratio steps / 10 ms, so no phase ever reaches
    // its target: `ufs_settled` is false at every fast-forward opportunity
    // and the two runs must be bit-identical, not merely close.
    let (mut stepped, mut fast) = pair(12, 24);
    let ps_slow = stepped.config.pstates.pstate_for_khz(2_000_000);
    let ps_nom = stepped.config.pstates.nominal();
    let spin = PhaseDemand {
        active_cores: 40,
        wait_seconds: 0.030,
        wait_busy: true,
        ..Default::default()
    };
    for node in [&mut stepped, &mut fast] {
        for _ in 0..8 {
            node.set_cpu_pstate(ps_slow);
            node.run_phase(&spin); // uncore slews down, never arrives
            node.set_cpu_pstate(ps_nom);
            node.run_phase(&spin); // slews back up, arrives only at the end
            node.set_cpu_pstate(ps_slow);
            node.run_idle(0.025); // idle target = min, again out of reach
            node.set_cpu_pstate(ps_nom);
            node.run_phase(&spin);
        }
    }
    assert_eq!(stepped.now(), fast.now());
    assert_eq!(stepped.snapshot(), fast.snapshot());
    assert_eq!(
        stepped.dc_energy_exact_j().to_bits(),
        fast.dc_energy_exact_j().to_bits(),
        "exact DC energy must match bit for bit"
    );
}

#[test]
fn fast_forward_defaults_off() {
    assert!(!NodeConfig::sd530_6148().fast_forward);
    assert!(!NodeConfig::gpu_node_6142m().fast_forward);
}
