//! A cluster of simulated nodes plus a simple interconnect model.
//!
//! The paper's MPI applications run on 2–16 nodes. Nodes execute outer-loop
//! iterations in lock-step (the applications are bulk-synchronous); the
//! interconnect model turns per-iteration message volumes into
//! communication time, which the MPI layer (`ear-mpisim`) charges to each
//! node as waiting.

use crate::config::NodeConfig;
use crate::node::Node;
use crate::time::SimTime;

/// Latency/bandwidth model of the cluster fabric (EDR InfiniBand-class).
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// Per-message latency (s).
    pub latency_s: f64,
    /// Link bandwidth per node (bytes/s).
    pub bandwidth_bytes: f64,
    /// Fixed software overhead per collective operation (s).
    pub collective_overhead_s: f64,
}

impl Default for Interconnect {
    fn default() -> Self {
        Self {
            latency_s: 1.5e-6,
            bandwidth_bytes: 12e9,
            collective_overhead_s: 4e-6,
        }
    }
}

impl Interconnect {
    /// Time for one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes.max(0.0) / self.bandwidth_bytes
    }

    /// Time for a collective over `nodes` nodes moving `bytes` per node
    /// (logarithmic tree model).
    pub fn collective_time(&self, nodes: usize, bytes: f64) -> f64 {
        let rounds = (nodes.max(1) as f64).log2().ceil().max(1.0);
        self.collective_overhead_s + rounds * self.p2p_time(bytes)
    }
}

/// A set of identical nodes sharing a fabric.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    /// The interconnect model (public: the MPI layer reads it).
    pub fabric: Interconnect,
}

impl Cluster {
    /// Boots `n` nodes with the given configuration; each node gets a
    /// distinct noise seed derived from `seed`.
    pub fn new(config: NodeConfig, n: usize, seed: u64) -> Self {
        assert!(n > 0, "a cluster needs at least one node");
        let nodes = (0..n)
            .map(|i| {
                Node::new(
                    config.clone(),
                    seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                )
            })
            .collect();
        Self {
            nodes,
            fabric: Interconnect::default(),
        }
    }

    /// Builds a cluster from pre-constructed (possibly heterogeneous)
    /// nodes — e.g. a partition mixing compute and GPU nodes.
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        Self {
            nodes,
            fabric: Interconnect::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, idx: usize) -> &mut Node {
        &mut self.nodes[idx]
    }

    /// Iterates over the nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Mutable iteration over the nodes.
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.nodes.iter_mut()
    }

    /// The nodes as one mutable slice, for callers that split them into
    /// disjoint `&mut` chunks (node-parallel job stepping).
    pub fn nodes_mut_slice(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// The latest clock among the nodes (nodes advance independently
    /// between synchronisation points).
    pub fn horizon(&self) -> SimTime {
        self.nodes
            .iter()
            .map(|n| n.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Advances every node that is behind `t` with idle time, modelling a
    /// barrier: after the call all clocks are equal.
    pub fn synchronise_to(&mut self, t: SimTime) {
        for node in &mut self.nodes {
            let lag = t - node.now();
            if lag > 0.0 {
                node.run_idle(lag);
            }
        }
    }

    /// Total exact DC energy across nodes (J).
    pub fn total_dc_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.dc_energy_exact_j()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseDemand;

    #[test]
    fn fabric_times_scale() {
        let f = Interconnect::default();
        assert!(f.p2p_time(1e6) > f.p2p_time(1e3));
        assert!(f.collective_time(16, 1e6) > f.collective_time(2, 1e6));
        // Latency floor for empty messages.
        assert!(f.p2p_time(0.0) >= f.latency_s);
    }

    #[test]
    fn cluster_boots_distinct_seeds() {
        let mut c = Cluster::new(NodeConfig::sd530_6148(), 4, 7);
        assert_eq!(c.len(), 4);
        let d = PhaseDemand {
            instructions: 1e10,
            mem_bytes: 5e9,
            active_cores: 40,
            ..Default::default()
        };
        let t0 = c.node_mut(0).run_phase(&d).duration_s();
        let t1 = c.node_mut(1).run_phase(&d).duration_s();
        // Different noise seeds: not bit-identical.
        assert_ne!(t0, t1);
        // But physically equal to within noise.
        assert!((t0 - t1).abs() / t0 < 0.05);
    }

    #[test]
    fn heterogeneous_cluster_from_nodes() {
        use crate::config::NodeConfig;
        let nodes = vec![
            Node::new(NodeConfig::sd530_6148(), 1),
            Node::new(NodeConfig::gpu_node_6142m(), 2),
        ];
        let c = Cluster::from_nodes(nodes);
        assert_eq!(c.len(), 2);
        assert_eq!(c.node(0).config.total_cores(), 40);
        assert_eq!(c.node(1).config.total_cores(), 32);
        assert_eq!(c.node(1).config.gpus, 2);
    }

    #[test]
    fn synchronise_fills_idle() {
        let mut c = Cluster::new(NodeConfig::sd530_6148(), 2, 3);
        let d = PhaseDemand {
            instructions: 1e10,
            mem_bytes: 5e9,
            active_cores: 40,
            ..Default::default()
        };
        c.node_mut(0).run_phase(&d);
        let horizon = c.horizon();
        c.synchronise_to(horizon);
        assert_eq!(c.node(0).now(), c.node(1).now());
    }
}
