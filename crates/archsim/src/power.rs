//! Analytic power model.
//!
//! Node DC power decomposes into package power (cores + uncore + static),
//! DRAM power, accelerator power and a constant platform baseline:
//!
//! ```text
//! P_core   = Σ_active  core_dyn_w · f_c^exp · activity · avx_factor
//!          + Σ_idle    core_idle_w
//! P_unc    = uncore_w · f_u^exp · (base_frac + (1−base_frac) · mem_util)
//! P_pkg    = pkg_static_w + P_core + P_unc          (per socket)
//! P_dram   = dram_static_w + dram_w_per_gbs · GB/s
//! P_dc     = Σ_sockets P_pkg + P_dram + platform_w + P_gpu
//! ```
//!
//! RAPL's PKG domain accumulates only `P_pkg`; the Intel Node Manager (DC)
//! accumulates `P_dc`. The constant platform/DRAM share is exactly what
//! makes package-relative savings exceed DC-relative savings in the paper's
//! Table VII.

use crate::config::PowerParams;

/// Instantaneous power state of one socket, as seen by the power model.
#[derive(Debug, Clone, Copy)]
pub struct SocketPowerInput {
    /// Number of cores actively executing (work or spin).
    pub active_cores: usize,
    /// Total cores in the socket.
    pub total_cores: usize,
    /// Effective core frequency of active cores (GHz, AVX-blended).
    pub f_core_ghz: f64,
    /// Activity factor of the active cores in [0, 1].
    pub activity: f64,
    /// Fraction of instructions that are AVX512.
    pub avx512_fraction: f64,
    /// Current uncore frequency (GHz).
    pub f_uncore_ghz: f64,
    /// Memory utilisation: achieved GB/s over peak GB/s, in [0, 1].
    pub mem_util: f64,
}

/// Core power of one socket (W).
pub fn core_power(p: &PowerParams, s: &SocketPowerInput) -> f64 {
    let avx_factor = 1.0 + (p.avx512_power_factor - 1.0) * s.avx512_fraction;
    let dyn_per_core = p.core_dyn_w * s.f_core_ghz.powf(p.core_freq_exp) * s.activity * avx_factor;
    let idle = (s.total_cores - s.active_cores.min(s.total_cores)) as f64 * p.core_idle_w;
    s.active_cores.min(s.total_cores) as f64 * dyn_per_core + idle
}

/// Uncore power of one socket (W).
pub fn uncore_power(p: &PowerParams, f_uncore_ghz: f64, mem_util: f64) -> f64 {
    let act = p.uncore_base_frac + (1.0 - p.uncore_base_frac) * mem_util.clamp(0.0, 1.0);
    p.uncore_w * f_uncore_ghz.powf(p.uncore_freq_exp) * act
}

/// Uncore power of one frequency domain (W): the socket's uncore capacity
/// `uncore_w` splits evenly across its `domains` dies, each clocking and
/// gating independently. With `domains == 1` this is bit-identical to
/// [`uncore_power`] (`uncore_w / 1.0` is exact).
pub fn uncore_domain_power(
    p: &PowerParams,
    domains: usize,
    f_uncore_ghz: f64,
    mem_util: f64,
) -> f64 {
    let act = p.uncore_base_frac + (1.0 - p.uncore_base_frac) * mem_util.clamp(0.0, 1.0);
    p.uncore_w / domains.max(1) as f64 * f_uncore_ghz.powf(p.uncore_freq_exp) * act
}

/// Package (RAPL PKG domain) power of one socket (W).
pub fn pkg_power(p: &PowerParams, s: &SocketPowerInput) -> f64 {
    p.pkg_static_w + core_power(p, s) + uncore_power(p, s.f_uncore_ghz, s.mem_util)
}

/// Package power with the uncore term supplied by the caller — used by the
/// node when it has already summed [`uncore_domain_power`] over domains.
/// Addition order matches [`pkg_power`] exactly.
pub fn pkg_power_with_uncore(p: &PowerParams, s: &SocketPowerInput, uncore_w: f64) -> f64 {
    p.pkg_static_w + core_power(p, s) + uncore_w
}

/// DRAM power of the node (W) for a given achieved traffic.
pub fn dram_power(p: &PowerParams, gbs: f64) -> f64 {
    p.dram_static_w + p.dram_w_per_gbs * gbs.max(0.0)
}

/// Accelerator power (W): per-workload active draw plus idle draw for
/// installed-but-unused GPUs.
pub fn gpu_power(p: &PowerParams, installed: usize, active_draw_w: f64) -> f64 {
    installed as f64 * p.gpu_idle_w + active_draw_w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn socket(f_core: f64, f_unc: f64, mem_util: f64) -> SocketPowerInput {
        SocketPowerInput {
            active_cores: 20,
            total_cores: 20,
            f_core_ghz: f_core,
            activity: 1.0,
            avx512_fraction: 0.0,
            f_uncore_ghz: f_unc,
            mem_util,
        }
    }

    #[test]
    fn pkg_power_plausible_for_6148() {
        // A busy Xeon 6148 socket lands near its 150 W TDP at nominal.
        let p = PowerParams::default();
        let w = pkg_power(&p, &socket(2.4, 2.4, 0.3));
        assert!(w > 100.0 && w < 160.0, "pkg power {w} W");
    }

    #[test]
    fn power_monotone_in_core_frequency() {
        let p = PowerParams::default();
        let lo = pkg_power(&p, &socket(1.2, 2.4, 0.3));
        let hi = pkg_power(&p, &socket(2.4, 2.4, 0.3));
        assert!(hi > lo);
    }

    #[test]
    fn power_monotone_in_uncore_frequency() {
        let p = PowerParams::default();
        let lo = pkg_power(&p, &socket(2.4, 1.2, 0.3));
        let hi = pkg_power(&p, &socket(2.4, 2.4, 0.3));
        assert!(hi > lo);
        // An uncore swing of 1.2 GHz should be worth tens of watts per
        // socket (Hackenberg et al. measured 15–40 W on comparable parts).
        assert!(
            hi - lo > 10.0 && hi - lo < 60.0,
            "uncore swing {} W",
            hi - lo
        );
    }

    #[test]
    fn avx512_draws_more() {
        let p = PowerParams::default();
        let mut s = socket(2.2, 2.4, 0.3);
        let scalar = pkg_power(&p, &s);
        s.avx512_fraction = 1.0;
        let avx = pkg_power(&p, &s);
        assert!(avx > scalar * 1.05);
    }

    #[test]
    fn idle_socket_is_cheap() {
        let p = PowerParams::default();
        let mut s = socket(2.4, 1.2, 0.0);
        s.active_cores = 0;
        let w = pkg_power(&p, &s);
        assert!(w < 55.0, "idle pkg {w} W");
    }

    #[test]
    fn dram_power_scales_with_traffic() {
        let p = PowerParams::default();
        assert!((dram_power(&p, 0.0) - p.dram_static_w).abs() < 1e-12);
        assert!(dram_power(&p, 100.0) > dram_power(&p, 10.0));
    }

    #[test]
    fn gpu_power_includes_idle_boards() {
        let p = PowerParams::default();
        // Two installed GPUs, one drawing 100 W.
        let w = gpu_power(&p, 2, 100.0);
        assert!((w - (2.0 * p.gpu_idle_w + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn uncore_activity_floor() {
        // Even with zero traffic the uncore draws its base fraction.
        let p = PowerParams::default();
        let idle = uncore_power(&p, 2.4, 0.0);
        let busy = uncore_power(&p, 2.4, 1.0);
        assert!(idle > 0.4 * busy);
        assert!(idle < busy);
    }

    #[test]
    fn single_domain_uncore_power_is_bit_identical() {
        let p = PowerParams::default();
        for f in [1.2, 1.7, 2.4] {
            for util in [0.0, 0.3, 1.0] {
                // Bitwise equality, not approximate: N=1 must not perturb
                // the energy integration.
                assert_eq!(
                    uncore_power(&p, f, util),
                    uncore_domain_power(&p, 1, f, util)
                );
            }
        }
        let s = socket(2.4, 2.4, 0.3);
        let unc = uncore_domain_power(&p, 1, s.f_uncore_ghz, s.mem_util);
        assert_eq!(pkg_power(&p, &s), pkg_power_with_uncore(&p, &s, 0.0 + unc));
    }

    #[test]
    fn down_scaling_one_domain_saves_its_share() {
        let p = PowerParams::default();
        let both_hi = uncore_domain_power(&p, 2, 2.4, 0.3) + uncore_domain_power(&p, 2, 2.4, 0.3);
        let one_lo = uncore_domain_power(&p, 2, 2.4, 0.3) + uncore_domain_power(&p, 2, 1.2, 0.0);
        // Matches the whole-socket figure at equal frequency...
        assert!((both_hi - uncore_power(&p, 2.4, 0.3)).abs() < 1e-12);
        // ...and dropping the idle die saves a meaningful slice.
        assert!(both_hi - one_lo > 5.0, "saving {} W", both_hi - one_lo);
    }
}
