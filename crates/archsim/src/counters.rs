//! Performance counter snapshots and deltas.
//!
//! EARL computes application signatures from counter *deltas* over a
//! measurement window. The node exposes a snapshot API mirroring what EAR
//! reads on real hardware through perf/PAPI and RAPL: instructions, cycles,
//! APERF/MPERF, IMC CAS counts, AVX512 instruction counts, uncore clocks
//! and the energy accumulators.

use crate::msr::MAX_UNCORE_DOMAINS;
use crate::time::SimTime;

/// Monotonic counters of one socket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SocketCounters {
    /// Instructions retired (fixed counter 0).
    pub instructions: u64,
    /// Unhalted core cycles summed over cores (fixed counter 1).
    pub core_cycles: u64,
    /// APERF-style accumulator: Σ_cores delivered_freq · dt (kHz·s ≈ kcycles).
    pub aperf_kcycles: u64,
    /// MPERF-style accumulator: Σ_cores nominal_freq · dt (kHz·s).
    pub mperf_kcycles: u64,
    /// IMC CAS transactions (64 B lines, reads + writes).
    pub cas_transactions: u64,
    /// AVX512 instructions retired (FP_ARITH 512-bit events).
    pub avx512_instructions: u64,
    /// Uncore clock ticks (U-box fixed counter), in kcycles. On multi-domain
    /// parts this is the per-domain mean, preserving the legacy single-knob
    /// reading.
    pub uclk_kcycles: u64,
    /// Exact package energy in µJ (RAPL MSR holds the quantised view).
    pub pkg_energy_uj: u64,
    /// Exact DRAM energy in µJ.
    pub dram_energy_uj: u64,
    /// Instantiated uncore frequency domains (1 on single-knob parts).
    pub uncore_domains: u8,
    /// Per-domain uncore clock ticks (kcycles); entries past
    /// `uncore_domains` stay zero.
    pub uclk_dom_kcycles: [u64; MAX_UNCORE_DOMAINS],
    /// Per-domain IMC CAS transactions; entries past `uncore_domains` stay
    /// zero. Domain totals are split by the modelled traffic routing, so
    /// their sum can differ from `cas_transactions` by rounding.
    pub cas_dom_transactions: [u64; MAX_UNCORE_DOMAINS],
}

/// Most sockets a simulated node can carry. Generous for the paper's
/// platforms (sd530 and the GPU node are both dual-socket); bounding it
/// lets [`CounterSnapshot`] hold its per-socket counters inline, so taking
/// a snapshot — done at every EARL signature boundary — never touches the
/// heap.
pub const MAX_SOCKETS: usize = 8;

/// Fixed-capacity, inline collection of per-socket counters.
///
/// Behaves like a `Vec<SocketCounters>` capped at [`MAX_SOCKETS`]
/// (`Deref<Target = [SocketCounters]>` gives iteration/indexing/`len`), but
/// is `Copy` and allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct SocketSet {
    counters: [SocketCounters; MAX_SOCKETS],
    len: u8,
}

impl SocketSet {
    /// An empty set.
    pub fn new() -> Self {
        Self {
            counters: [SocketCounters::default(); MAX_SOCKETS],
            len: 0,
        }
    }

    /// Appends one socket's counters. Panics beyond [`MAX_SOCKETS`].
    pub fn push(&mut self, c: SocketCounters) {
        assert!(
            (self.len as usize) < MAX_SOCKETS,
            "node has more than {MAX_SOCKETS} sockets"
        );
        self.counters[self.len as usize] = c;
        self.len += 1;
    }
}

impl Default for SocketSet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for SocketSet {
    type Target = [SocketCounters];
    fn deref(&self) -> &[SocketCounters] {
        &self.counters[..self.len as usize]
    }
}

impl PartialEq for SocketSet {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl FromIterator<SocketCounters> for SocketSet {
    fn from_iter<I: IntoIterator<Item = SocketCounters>>(iter: I) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.push(c);
        }
        s
    }
}

impl<'a> IntoIterator for &'a SocketSet {
    type Item = &'a SocketCounters;
    type IntoIter = std::slice::Iter<'a, SocketCounters>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A point-in-time view of all node counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSnapshot {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// Per-socket counters.
    pub sockets: SocketSet,
    /// INM DC energy counter (mJ, published value — 1 s granularity).
    pub dc_energy_mj: u64,
    /// Timestamp at which `dc_energy_mj` was published.
    pub dc_energy_at: SimTime,
    /// Exact DC energy (J) — simulator ground truth for accounting.
    pub dc_energy_exact_j: f64,
}

/// Node-level metrics derived from two snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterDelta {
    /// Window length (s).
    pub seconds: f64,
    /// Instructions retired, node total.
    pub instructions: f64,
    /// Core cycles, node total.
    pub core_cycles: f64,
    /// CAS transactions, node total.
    pub cas_transactions: f64,
    /// AVX512 instructions, node total.
    pub avx512_instructions: f64,
    /// Average delivered CPU frequency across all cores (kHz).
    pub avg_cpu_khz: f64,
    /// Average uncore frequency across sockets (kHz).
    pub avg_imc_khz: f64,
    /// Package energy over the window (J), node total.
    pub pkg_energy_j: f64,
    /// DRAM energy over the window (J), node total.
    pub dram_energy_j: f64,
    /// DC energy over the window (J), from the published INM counter.
    pub dc_energy_j: f64,
    /// Time between the INM publications backing `dc_energy_j` (s).
    pub dc_window_s: f64,
    /// Uncore frequency domains per socket over the window (at least 1).
    pub uncore_domains: usize,
    /// Average uncore frequency of each domain across sockets (kHz);
    /// entries past `uncore_domains` stay zero.
    pub imc_dom_khz: [f64; MAX_UNCORE_DOMAINS],
    /// Per-domain CAS transactions, node total.
    pub cas_dom_transactions: [f64; MAX_UNCORE_DOMAINS],
}

impl CounterSnapshot {
    /// Computes derived metrics for the window `earlier .. self`.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterDelta {
        assert_eq!(
            self.sockets.len(),
            earlier.sockets.len(),
            "socket count changed"
        );
        let seconds = self.time - earlier.time;
        let mut d = CounterDelta {
            seconds,
            instructions: 0.0,
            core_cycles: 0.0,
            cas_transactions: 0.0,
            avx512_instructions: 0.0,
            avg_cpu_khz: 0.0,
            avg_imc_khz: 0.0,
            pkg_energy_j: 0.0,
            dram_energy_j: 0.0,
            dc_energy_j: (self.dc_energy_mj.saturating_sub(earlier.dc_energy_mj)) as f64 * 1e-3,
            dc_window_s: self.dc_energy_at - earlier.dc_energy_at,
            uncore_domains: self
                .sockets
                .first()
                .map_or(1, |s| s.uncore_domains as usize)
                .max(1),
            imc_dom_khz: [0.0; MAX_UNCORE_DOMAINS],
            cas_dom_transactions: [0.0; MAX_UNCORE_DOMAINS],
        };
        let mut aperf = 0.0;
        let mut mperf = 0.0;
        let mut uclk = 0.0;
        let mut uclk_dom = [0.0; MAX_UNCORE_DOMAINS];
        for (now, was) in self.sockets.iter().zip(earlier.sockets.iter()) {
            d.instructions += (now.instructions - was.instructions) as f64;
            d.core_cycles += (now.core_cycles - was.core_cycles) as f64;
            d.cas_transactions += (now.cas_transactions - was.cas_transactions) as f64;
            d.avx512_instructions += (now.avx512_instructions - was.avx512_instructions) as f64;
            aperf += (now.aperf_kcycles - was.aperf_kcycles) as f64;
            mperf += (now.mperf_kcycles - was.mperf_kcycles) as f64;
            uclk += (now.uclk_kcycles - was.uclk_kcycles) as f64;
            d.pkg_energy_j += (now.pkg_energy_uj - was.pkg_energy_uj) as f64 * 1e-6;
            d.dram_energy_j += (now.dram_energy_uj - was.dram_energy_uj) as f64 * 1e-6;
            for (k, u) in uclk_dom.iter_mut().enumerate().take(d.uncore_domains) {
                *u += (now.uclk_dom_kcycles[k] - was.uclk_dom_kcycles[k]) as f64;
                d.cas_dom_transactions[k] +=
                    (now.cas_dom_transactions[k] - was.cas_dom_transactions[k]) as f64;
            }
        }
        if seconds > 0.0 {
            // APERF accumulates Σ_cores delivered_khz·dt (idle cores count
            // at their idle frequency, matching the paper's "average
            // computed using all the cores"); MPERF accumulates
            // Σ_cores SENTINEL·dt, a pure core-seconds base. The classic
            // aperf/mperf·reference formula then needs no topology info.
            if mperf > 0.0 {
                d.avg_cpu_khz = aperf / mperf * MPERF_SENTINEL_KHZ;
            }
            d.avg_imc_khz = uclk / seconds / self.sockets.len() as f64;
            for (k, khz) in d.imc_dom_khz.iter_mut().enumerate().take(d.uncore_domains) {
                *khz = uclk_dom[k] / seconds / self.sockets.len() as f64;
            }
        }
        d
    }

    /// Window CPI.
    pub fn cpi(&self, earlier: &CounterSnapshot) -> f64 {
        self.delta(earlier).cpi()
    }
}

/// MPERF is accumulated by the node as `cores · dt · MPERF_SENTINEL_KHZ`
/// *regardless of the platform's real nominal frequency*, purely as a
/// core-seconds base for averaging (the real nominal lives in the pstate
/// table). 1e6 kHz keeps the integer counters well-conditioned.
pub const MPERF_SENTINEL_KHZ: f64 = 1_000_000.0;

impl CounterDelta {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions > 0.0 {
            self.core_cycles / self.instructions
        } else {
            0.0
        }
    }

    /// Main-memory bandwidth in GB/s.
    pub fn gbs(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cas_transactions * 64.0 / self.seconds / 1e9
        } else {
            0.0
        }
    }

    /// Memory transactions per instruction.
    pub fn tpi(&self) -> f64 {
        if self.instructions > 0.0 {
            self.cas_transactions / self.instructions
        } else {
            0.0
        }
    }

    /// AVX512 instruction fraction.
    pub fn vpi(&self) -> f64 {
        if self.instructions > 0.0 {
            self.avx512_instructions / self.instructions
        } else {
            0.0
        }
    }

    /// Average DC node power (W) from the INM counter. Energy deltas are
    /// divided by the span between the *publication* timestamps, exactly as
    /// careful tooling does for a counter with 1 s update granularity.
    pub fn dc_power_w(&self) -> f64 {
        if self.dc_window_s > 0.0 {
            self.dc_energy_j / self.dc_window_s
        } else {
            0.0
        }
    }

    /// Average RAPL package power (W), node total.
    pub fn pkg_power_w(&self) -> f64 {
        if self.seconds > 0.0 {
            self.pkg_energy_j / self.seconds
        } else {
            0.0
        }
    }

    /// Average CPU frequency in GHz.
    pub fn avg_cpu_ghz(&self) -> f64 {
        self.avg_cpu_khz * 1e-6
    }

    /// Average IMC (uncore) frequency in GHz.
    pub fn avg_imc_ghz(&self) -> f64 {
        self.avg_imc_khz * 1e-6
    }

    /// Average uncore frequency of domain `d` in GHz (0.0 past the
    /// instantiated domain count).
    pub fn imc_dom_ghz(&self, d: usize) -> f64 {
        if d < MAX_UNCORE_DOMAINS {
            self.imc_dom_khz[d] * 1e-6
        } else {
            0.0
        }
    }

    /// Main-memory bandwidth routed through domain `d`, in GB/s.
    pub fn gbs_dom(&self, d: usize) -> f64 {
        if d < MAX_UNCORE_DOMAINS && self.seconds > 0.0 {
            self.cas_dom_transactions[d] * 64.0 / self.seconds / 1e9
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: f64, s: SocketCounters, dc_mj: u64) -> CounterSnapshot {
        CounterSnapshot {
            time: SimTime::from_secs(t),
            sockets: [s].into_iter().collect(),
            dc_energy_mj: dc_mj,
            dc_energy_at: SimTime::from_secs(t),
            dc_energy_exact_j: dc_mj as f64 * 1e-3,
        }
    }

    #[test]
    fn derived_metrics() {
        let a = snap(0.0, SocketCounters::default(), 0);
        let c = SocketCounters {
            instructions: 2_000_000_000,
            core_cycles: 1_000_000_000,
            cas_transactions: 156_250_000, // 10 GB over 1 s
            avx512_instructions: 500_000_000,
            aperf_kcycles: (2.2e6f64 * 40.0) as u64, // 40 cores at 2.2 GHz, 1 s
            mperf_kcycles: (MPERF_SENTINEL_KHZ * 40.0) as u64,
            ..Default::default()
        };
        let mut c = c;
        c.uclk_kcycles = 2_000_000; // 2.0 GHz for 1 s
        c.pkg_energy_uj = 200_000_000; // 200 J
        c.dram_energy_uj = 30_000_000;
        let b = snap(1.0, c, 330_000);
        let d = b.delta(&a);
        assert!((d.cpi() - 0.5).abs() < 1e-9);
        assert!((d.gbs() - 10.0).abs() < 1e-6);
        assert!((d.vpi() - 0.25).abs() < 1e-9);
        assert!((d.tpi() - 156_250_000.0 / 2e9).abs() < 1e-12);
        assert!((d.dc_power_w() - 330.0).abs() < 1e-6);
        assert!((d.pkg_power_w() - 200.0).abs() < 1e-6);
        assert!(
            (d.avg_cpu_ghz() - 2.2).abs() < 1e-6,
            "avg {}",
            d.avg_cpu_ghz()
        );
        assert!((d.avg_imc_ghz() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_window_is_safe() {
        let a = snap(1.0, SocketCounters::default(), 0);
        let d = a.delta(&a);
        assert_eq!(d.seconds, 0.0);
        assert_eq!(d.cpi(), 0.0);
        assert_eq!(d.gbs(), 0.0);
        assert_eq!(d.dc_power_w(), 0.0);
    }
}
