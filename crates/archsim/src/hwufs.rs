//! Hardware uncore frequency scaling (UFS) control loop.
//!
//! Since Haswell-EP, the package firmware dynamically selects the uncore
//! frequency within the limits programmed in `MSR_UNCORE_RATIO_LIMIT`
//! (paper §IV). Per Intel's patent US9323316B2 and the measurements in
//! Hackenberg'15 / Schöne'19, the selection follows the fastest active
//! core's frequency and the memory/stall activity, reacting within ~10 ms.
//!
//! We model it as a proportional controller evaluated every
//! [`crate::config::HwUfsParams::period_s`]:
//!
//! * If some active core's *delivered* frequency is at or above nominal, the
//!   firmware targets the programmed maximum ratio (this is what the paper
//!   observes: the hardware keeps the IMC at 2.39 GHz for both CPU-bound
//!   BT-MZ and memory-bound LU — Table I).
//! * Otherwise (all cores below nominal: DVFS throttling or AVX licence),
//!   the target scales between the programmed limits with memory utilisation
//!   and core busy fraction, plus a per-workload `bias` term that calibrates
//!   the otherwise-opaque EPB-driven firmware heuristic.
//!
//! The controller slews at most `slew_ratio_steps` per period, giving the
//! tens-of-milliseconds adaptation measured in the literature.

use crate::config::HwUfsParams;

/// Inputs sampled by the firmware each control period.
#[derive(Debug, Clone, Copy)]
pub struct HwUfsInput {
    /// Highest delivered frequency among non-halted cores (kHz); 0 if the
    /// socket is fully idle.
    pub fastest_active_khz: u64,
    /// Nominal (P1) frequency (kHz).
    pub nominal_khz: u64,
    /// Achieved memory traffic over peak, in [0, 1].
    pub mem_util: f64,
    /// Fraction of cores that are busy (work or spin), in [0, 1].
    pub busy_fraction: f64,
    /// Energy-performance bias from `IA32_ENERGY_PERF_BIAS` (0..=15).
    pub epb: u8,
    /// Per-workload calibration bias for the opaque firmware heuristic.
    pub bias: f64,
}

/// The per-socket firmware UFS controller.
#[derive(Debug, Clone)]
pub struct HwUfsController {
    params: HwUfsParams,
    current_ratio: u8,
    /// Simulated time (s) remaining until the next control evaluation.
    until_next: f64,
}

impl HwUfsController {
    /// Creates a controller starting at `initial_ratio`.
    pub fn new(params: HwUfsParams, initial_ratio: u8) -> Self {
        let until_next = params.period_s;
        Self {
            params,
            current_ratio: initial_ratio,
            until_next,
        }
    }

    /// The uncore ratio currently applied (100 MHz units).
    pub fn current_ratio(&self) -> u8 {
        self.current_ratio
    }

    /// Forces the ratio (used when software pins min == max; the firmware
    /// must apply the new limits immediately, not at the next period).
    pub fn clamp_to_limits(&mut self, min_ratio: u8, max_ratio: u8) {
        self.current_ratio = self.current_ratio.clamp(min_ratio, max_ratio);
    }

    /// The raw target ratio the firmware would pick for `input` within
    /// `[min_ratio, max_ratio]`, before slew limiting.
    pub fn target_ratio(&self, input: &HwUfsInput, min_ratio: u8, max_ratio: u8) -> u8 {
        if input.fastest_active_khz == 0 {
            return min_ratio;
        }
        if input.fastest_active_khz + self.params.nominal_margin_khz >= input.nominal_khz {
            return max_ratio;
        }
        // Sub-nominal mode: scale between the limits. EPB above "balanced"
        // (6) shaves the target further; below it boosts.
        let p = &self.params;
        let mem_term = p.mem_weight * (input.mem_util / p.mem_sat).min(1.0);
        let busy_term = p.busy_weight * input.busy_fraction.clamp(0.0, 1.0);
        let epb_term = (6.0 - input.epb as f64) * 0.02;
        let raw = (mem_term + busy_term + epb_term + input.bias).clamp(0.0, 1.0);
        let span = (max_ratio - min_ratio) as f64;
        (min_ratio as f64 + span * raw).round() as u8
    }

    /// Advances simulated time by `dt` seconds, evaluating the control loop
    /// at each elapsed period boundary. Returns the ratio in effect after
    /// the advance.
    ///
    /// Short advances (the normal 10 ms stepping, crossing at most a few
    /// boundaries) walk the boundaries one by one, so their floating-point
    /// behaviour is unchanged. A long advance — the quantum fast-forward
    /// integrating a whole phase remainder — switches to a closed form: the
    /// boundary count comes from one division, and the slew is applied at
    /// most `ratio span / step` times since it saturates at the target.
    pub fn advance(&mut self, mut dt: f64, input: &HwUfsInput, min_ratio: u8, max_ratio: u8) -> u8 {
        self.clamp_to_limits(min_ratio, max_ratio);
        let target = self.target_ratio(input, min_ratio, max_ratio);
        let period = self.params.period_s;
        if dt >= self.until_next + 4.0 * period {
            // Closed form. Boundaries crossed: one at `until_next`, then one
            // per further period.
            let after_first = dt - self.until_next;
            let extra = (after_first / period).floor();
            let crossings = 1 + extra as u64;
            // u8 ratios are at most 255 steps from the target; beyond that
            // the slew has saturated and further boundaries are no-ops.
            for _ in 0..crossings.min(256) {
                self.step_towards(target);
            }
            let leftover = (after_first - extra * period).clamp(0.0, period);
            self.until_next = period - leftover;
            if self.until_next <= 0.0 {
                self.until_next = period;
            }
            return self.current_ratio;
        }
        while dt >= self.until_next {
            dt -= self.until_next;
            self.until_next = period;
            self.step_towards(target);
        }
        self.until_next -= dt;
        self.current_ratio
    }

    fn step_towards(&mut self, target: u8) {
        let step = self.params.slew_ratio_steps.max(1);
        if target > self.current_ratio {
            self.current_ratio = (self.current_ratio + step).min(target);
        } else if target < self.current_ratio {
            self.current_ratio = self.current_ratio.saturating_sub(step).max(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwUfsParams;

    fn input(fastest_khz: u64, mem_util: f64, busy: f64) -> HwUfsInput {
        HwUfsInput {
            fastest_active_khz: fastest_khz,
            nominal_khz: 2_400_000,
            mem_util,
            busy_fraction: busy,
            epb: 6,
            bias: 0.0,
        }
    }

    fn controller() -> HwUfsController {
        HwUfsController::new(HwUfsParams::default(), 24)
    }

    #[test]
    fn nominal_core_pins_uncore_to_max() {
        // Paper Table I: at nominal CPU frequency the HW keeps the IMC at
        // max for both CPU-bound and memory-bound kernels.
        let c = controller();
        assert_eq!(c.target_ratio(&input(2_400_000, 0.05, 1.0), 12, 24), 24);
        assert_eq!(c.target_ratio(&input(2_400_000, 0.9, 1.0), 12, 24), 24);
    }

    #[test]
    fn idle_socket_drops_to_min() {
        let c = controller();
        assert_eq!(c.target_ratio(&input(0, 0.0, 0.0), 12, 24), 12);
    }

    #[test]
    fn sub_nominal_scales_with_memory_demand() {
        let c = controller();
        let quiet = c.target_ratio(&input(2_200_000, 0.02, 1.0), 12, 24);
        let busy = c.target_ratio(&input(2_200_000, 0.44, 1.0), 12, 24);
        assert!(busy > quiet, "{busy} vs {quiet}");
        // Heavy memory traffic saturates near max even sub-nominal.
        let streaming = c.target_ratio(&input(2_200_000, 0.9, 1.0), 12, 24);
        assert!(streaming >= 23);
    }

    #[test]
    fn dgemm_like_avx_case() {
        // AVX512-capped DGEMM: delivered 2.2 GHz < nominal, mem_util ≈ 0.48,
        // small negative bias → the firmware settles near 2.0 GHz (paper
        // Table IV: 1.98 at "No policy").
        let c = controller();
        let mut inp = input(2_200_000, 0.48, 1.0);
        inp.bias = -0.35;
        let t = c.target_ratio(&inp, 12, 24);
        assert!((19..=21).contains(&t), "target {t}");
    }

    #[test]
    fn respects_msr_limits() {
        let mut c = controller();
        // Software pinned the range to [15, 18].
        let r = c.advance(1.0, &input(2_400_000, 0.5, 1.0), 15, 18);
        assert!((15..=18).contains(&r));
        let r = c.advance(1.0, &input(0, 0.0, 0.0), 15, 18);
        assert_eq!(r, 15);
    }

    #[test]
    fn slew_takes_multiple_periods() {
        let mut c = controller();
        // From 24 toward 12, 2 steps per 10 ms: one period moves only 2.
        let r = c.advance(0.010, &input(0, 0.0, 0.0), 12, 24);
        assert_eq!(r, 22);
        // 60 ms more completes the transition.
        let r = c.advance(0.060, &input(0, 0.0, 0.0), 12, 24);
        assert_eq!(r, 12);
    }

    #[test]
    fn epb_biases_target() {
        let c = controller();
        let mut perf = input(2_200_000, 0.2, 1.0);
        perf.epb = 0; // performance bias
        let mut save = input(2_200_000, 0.2, 1.0);
        save.epb = 15; // power-save bias
        assert!(c.target_ratio(&perf, 12, 24) > c.target_ratio(&save, 12, 24));
    }

    #[test]
    fn pinned_range_applies_immediately() {
        let mut c = controller();
        c.clamp_to_limits(18, 18);
        assert_eq!(c.current_ratio(), 18);
    }

    #[test]
    fn long_advance_matches_stepping() {
        // The closed-form path taken by a long (fast-forward) advance must
        // land on the same ratio and phase as stepping quantum by quantum.
        let inp = input(2_200_000, 0.3, 1.0);
        let mut long = controller();
        let mut stepped = controller();
        long.advance(0.737, &inp, 12, 24);
        for _ in 0..73 {
            stepped.advance(0.010, &inp, 12, 24);
        }
        stepped.advance(0.007, &inp, 12, 24);
        assert_eq!(long.current_ratio(), stepped.current_ratio());
        // After the same further short advance both cross (or don't cross)
        // the next boundary together: the residual phase matches too.
        let l = long.advance(0.004, &input(0, 0.0, 0.0), 12, 24);
        let s = stepped.advance(0.004, &input(0, 0.0, 0.0), 12, 24);
        assert_eq!(l, s);
    }

    #[test]
    fn long_idle_advance_saturates_at_min() {
        let mut c = controller();
        // 10 simulated seconds idle: 1000 boundaries, slew saturates at 12
        // long before the capped 256 steps run out.
        let r = c.advance(10.0, &input(0, 0.0, 0.0), 12, 24);
        assert_eq!(r, 12);
    }
}
