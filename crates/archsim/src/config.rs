//! Node hardware configuration: topology, frequency ranges and the
//! calibrated coefficients of the performance and power models.

use crate::pstate::PstateTable;

/// Performance model coefficients (see [`crate::perf`]).
#[derive(Debug, Clone)]
pub struct PerfParams {
    /// Peak achievable main-memory bandwidth of the node (bytes/s) with the
    /// uncore at full frequency. 2 sockets × 6 × DDR4-2400 ≈ 230 GB/s
    /// theoretical; ~205 GB/s achievable (HPCG in the paper streams
    /// 177 GB/s).
    pub bw_peak_bytes: f64,
    /// Uncore frequency (GHz) above which the achievable bandwidth
    /// saturates; below it, bandwidth scales linearly with f_uncore.
    pub bw_sat_ghz: f64,
}

impl Default for PerfParams {
    fn default() -> Self {
        Self {
            bw_peak_bytes: 205e9,
            bw_sat_ghz: 2.1,
        }
    }
}

/// Power model coefficients (see [`crate::power`]). Defaults are calibrated
/// so the DC node power of the paper's characterisation runs (Tables II and
/// V) is reproduced within a few percent on the Lenovo SD530 / dual Xeon
/// 6148 configuration.
#[derive(Debug, Clone)]
pub struct PowerParams {
    /// Constant platform power: fans, board, NIC, disks, PSU losses (W).
    pub platform_w: f64,
    /// Static (leakage + always-on) package power per socket (W).
    pub pkg_static_w: f64,
    /// Dynamic core power at 1 GHz, full activity, per core (W).
    pub core_dyn_w: f64,
    /// Exponent of the core dynamic power law P ∝ f^exp (captures V·f
    /// scaling along the V/f curve).
    pub core_freq_exp: f64,
    /// Power of a halted/idle core (W).
    pub core_idle_w: f64,
    /// Multiplier on core dynamic power while executing AVX512.
    pub avx512_power_factor: f64,
    /// Activity factor of a busy-waiting (spinning) core.
    pub spin_activity: f64,
    /// Uncore (mesh, LLC, IMC) power per socket at 1 GHz uncore (W).
    pub uncore_w: f64,
    /// Exponent of the uncore power law.
    pub uncore_freq_exp: f64,
    /// Activity-independent fraction of uncore power (clocks gate poorly).
    pub uncore_base_frac: f64,
    /// Static DRAM power for the 12 × 8 GiB DIMM configuration (W).
    pub dram_static_w: f64,
    /// DRAM power per GB/s of traffic (W).
    pub dram_w_per_gbs: f64,
    /// Idle power per installed GPU (the paper notes the NVIDIA driver
    /// powers down the unused second V100) (W).
    pub gpu_idle_w: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            platform_w: 80.0,
            pkg_static_w: 24.0,
            core_dyn_w: 0.366,
            core_freq_exp: 2.4,
            core_idle_w: 0.4,
            avx512_power_factor: 1.35,
            spin_activity: 0.55,
            uncore_w: 11.0,
            uncore_freq_exp: 2.0,
            uncore_base_frac: 0.5,
            dram_static_w: 8.0,
            dram_w_per_gbs: 0.25,
            gpu_idle_w: 10.0,
        }
    }
}

/// Hardware UFS control-loop parameters (see [`crate::hwufs`]).
#[derive(Debug, Clone)]
pub struct HwUfsParams {
    /// Control-loop period; ref \[7\] measured ~10 ms reaction on Skylake-SP.
    pub period_s: f64,
    /// Weight of memory demand in the sub-nominal target.
    pub mem_weight: f64,
    /// Memory utilisation at which the memory term saturates.
    pub mem_sat: f64,
    /// Weight of core busy fraction in the sub-nominal target.
    pub busy_weight: f64,
    /// Maximum ratio steps moved per control period.
    pub slew_ratio_steps: u8,
    /// Hysteresis below nominal (kHz) still treated as "at nominal": a few
    /// percent of AVX instructions blend the delivered frequency slightly
    /// under P1 without the firmware leaving max-uncore mode.
    pub nominal_margin_khz: u64,
}

impl Default for HwUfsParams {
    fn default() -> Self {
        Self {
            period_s: 0.010,
            mem_weight: 0.8,
            mem_sat: 0.45,
            busy_weight: 0.2,
            slew_ratio_steps: 2,
            nominal_margin_khz: 60_000,
        }
    }
}

/// Full configuration of a simulated node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Number of sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// CPU pstate table.
    pub pstates: PstateTable,
    /// Uncore ratio range in 100 MHz units (min, max).
    pub uncore_min_ratio: u8,
    /// See [`NodeConfig::uncore_min_ratio`].
    pub uncore_max_ratio: u8,
    /// Uncore frequency domains per socket. Skylake-SP exposes one package
    /// knob; TPMI parts (Granite Rapids) expose one per compute die. Each
    /// domain gets its own ratio-limit/perf-status register pair, firmware
    /// controller and share of the memory controllers. Clamped to
    /// `1..=`[`crate::msr::MAX_UNCORE_DOMAINS`] at node construction.
    pub uncore_domains: usize,
    /// Frequency of idle (halted) cores in kHz.
    pub idle_core_khz: u64,
    /// Number of installed GPUs.
    pub gpus: usize,
    /// Performance model coefficients.
    pub perf: PerfParams,
    /// Power model coefficients.
    pub power: PowerParams,
    /// Hardware UFS control loop parameters.
    pub hwufs: HwUfsParams,
    /// Relative sigma of run-to-run measurement noise applied to iteration
    /// durations and power (the paper averages 3 runs for this reason).
    pub noise_sigma: f64,
    /// Quantum fast-forward: once the firmware UFS controller has settled
    /// (current ratio equals its target on every socket), the remainder of
    /// a phase is integrated analytically in one step instead of walking
    /// 10 ms quanta. Off by default: the one-shot integration is equal in
    /// exact arithmetic but not bit-identical to the stepped sum, and the
    /// experiment tables guarantee bit-reproducibility.
    pub fast_forward: bool,
}

impl NodeConfig {
    /// The paper's compute node: Lenovo ThinkSystem SD530, 2 × Xeon Gold
    /// 6148 (20 cores, 2.4 GHz nominal), 12 × 8 GiB DDR4-2400, uncore
    /// 1.2–2.4 GHz.
    pub fn sd530_6148() -> Self {
        Self {
            name: "Lenovo SD530 / 2x Xeon Gold 6148",
            sockets: 2,
            cores_per_socket: 20,
            pstates: PstateTable::xeon_gold_6148(),
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            idle_core_khz: 1_000_000,
            gpus: 0,
            perf: PerfParams::default(),
            power: PowerParams::default(),
            hwufs: HwUfsParams::default(),
            noise_sigma: 0.004,
            fast_forward: false,
        }
    }

    /// The paper's GPU node: 2 × Xeon Gold 6142M (16 cores, 2.6 GHz
    /// nominal) with two NVIDIA V100; same 1.2–2.4 GHz uncore range.
    pub fn gpu_node_6142m() -> Self {
        Self {
            name: "2x Xeon Gold 6142M + 2x V100",
            sockets: 2,
            cores_per_socket: 16,
            pstates: PstateTable::xeon_gold_6142m(),
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            idle_core_khz: 1_000_000,
            gpus: 2,
            perf: PerfParams::default(),
            power: PowerParams::default(),
            hwufs: HwUfsParams::default(),
            noise_sigma: 0.004,
            fast_forward: false,
        }
    }

    /// Returns the configuration with `n` uncore domains per socket
    /// (clamped to the supported range).
    pub fn with_uncore_domains(mut self, n: usize) -> Self {
        self.uncore_domains = n.clamp(1, crate::msr::MAX_UNCORE_DOMAINS);
        self
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Uncore frequency in GHz for a ratio in 100 MHz units.
    pub fn uncore_ghz(&self, ratio: u8) -> f64 {
        ratio as f64 * 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd530_topology() {
        let c = NodeConfig::sd530_6148();
        assert_eq!(c.total_cores(), 40);
        assert_eq!(c.uncore_min_ratio, 12);
        assert_eq!(c.uncore_max_ratio, 24);
        assert!((c.uncore_ghz(24) - 2.4).abs() < 1e-12);
        assert_eq!(c.pstates.nominal_khz(), 2_400_000);
    }

    #[test]
    fn gpu_node_topology() {
        let c = NodeConfig::gpu_node_6142m();
        assert_eq!(c.total_cores(), 32);
        assert_eq!(c.gpus, 2);
        assert_eq!(c.pstates.nominal_khz(), 2_600_000);
    }
}
