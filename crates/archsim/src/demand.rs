//! The demand a workload phase places on a node.
//!
//! The simulator is *demand-driven*: applications do not execute
//! instructions, they present per-iteration resource demands (instructions,
//! main-memory traffic, vector mix, waiting time) and the node's performance
//! and power models turn those into durations, counter increments and energy.

/// Resource demand of one outer-loop iteration (or phase slice) on one node.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDemand {
    /// Instructions to retire across all active cores in the work portion.
    pub instructions: f64,
    /// Fraction of instructions that are AVX512 (the paper's VPI).
    pub avx512_fraction: f64,
    /// Main-memory traffic in bytes (read + write, cache-line granularity).
    pub mem_bytes: f64,
    /// Core cycles per instruction of the core-bound component (excludes
    /// uncore latency and DRAM bandwidth stalls, which the model adds).
    pub cpi_core: f64,
    /// Uncore (mesh + LLC + IMC queue) cycles charged per 64 B memory
    /// transaction; this is the component that scales with 1/f_uncore.
    pub uncore_lat_cycles: f64,
    /// Fraction of DRAM service time hidden under computation, in [0, 1].
    pub mem_overlap: f64,
    /// Cores actively executing the work portion.
    pub active_cores: usize,
    /// Average activity factor of the active cores (memory-stalled cores
    /// draw less dynamic power than retiring cores).
    pub activity: f64,
    /// Time spent waiting (MPI, GPU) appended to the work portion, measured
    /// at nominal frequency. Waiting does not retire workload instructions.
    pub wait_seconds: f64,
    /// Whether waiting is a busy-wait (spin: cores stay clocked and draw
    /// power, e.g. MPI polling, CUDA synchronize) or an idle wait.
    pub wait_busy: bool,
    /// Average power drawn by accelerators during this phase (0 if none).
    pub gpu_power_w: f64,
    /// Calibration bias for the opaque firmware uncore heuristic (see
    /// `hwufs`); 0 for a neutral workload.
    pub hw_ufs_bias: f64,
    /// How the phase's memory traffic routes across the socket's uncore
    /// frequency domains. `None` (the default) spreads traffic uniformly —
    /// the single-knob behaviour on a 1-domain part. `Some(fracs)` pins the
    /// split: entry `d` is the fraction of `mem_bytes` served by domain `d`
    /// (entries past the node's domain count are ignored; on a 1-domain
    /// node entry 0 should be 1.0). A GPU-offload host phase routes its
    /// PCIe/staging traffic to the die fronting the accelerator, leaving
    /// the other die compute-idle.
    pub domain_mem_frac: Option<[f64; crate::msr::MAX_UNCORE_DOMAINS]>,
}

impl Default for PhaseDemand {
    fn default() -> Self {
        Self {
            instructions: 0.0,
            avx512_fraction: 0.0,
            mem_bytes: 0.0,
            cpi_core: 1.0,
            uncore_lat_cycles: 6.0,
            mem_overlap: 0.5,
            active_cores: 1,
            activity: 1.0,
            wait_seconds: 0.0,
            wait_busy: true,
            gpu_power_w: 0.0,
            hw_ufs_bias: 0.0,
            domain_mem_frac: None,
        }
    }
}

impl PhaseDemand {
    /// 64 B memory transactions implied by `mem_bytes`.
    pub fn mem_transactions(&self) -> f64 {
        self.mem_bytes / 64.0
    }

    /// The paper's TPI metric: main-memory transactions per instruction.
    pub fn tpi(&self) -> f64 {
        if self.instructions > 0.0 {
            self.mem_transactions() / self.instructions
        } else {
            0.0
        }
    }

    /// Fraction of memory traffic routed to domain `d` of `nd` instantiated
    /// domains. Uniform (`1/nd`) unless a split is pinned; on a single
    /// domain the uniform split multiplies by exactly 1.0.
    pub fn domain_frac(&self, d: usize, nd: usize) -> f64 {
        match &self.domain_mem_frac {
            Some(fr) if d < fr.len() => fr[d],
            Some(_) => 0.0,
            None => 1.0 / nd.max(1) as f64,
        }
    }

    /// Validates physical plausibility; used by tests and workload builders.
    pub fn validate(&self) -> Result<(), String> {
        if self.instructions.is_nan() || self.instructions < 0.0 {
            return Err(format!("negative instructions {}", self.instructions));
        }
        if !(0.0..=1.0).contains(&self.avx512_fraction) {
            return Err(format!("vpi out of range: {}", self.avx512_fraction));
        }
        if self.mem_bytes.is_nan() || self.mem_bytes < 0.0 {
            return Err(format!("negative mem bytes {}", self.mem_bytes));
        }
        if self.cpi_core <= 0.0 && self.instructions > 0.0 {
            return Err(format!("non-positive cpi_core {}", self.cpi_core));
        }
        if !(0.0..=1.0).contains(&self.mem_overlap) {
            return Err(format!("mem_overlap out of range: {}", self.mem_overlap));
        }
        if self.active_cores == 0 && self.instructions > 0.0 {
            return Err("work with zero active cores".into());
        }
        if !(0.0..=1.0).contains(&self.activity) {
            return Err(format!("activity out of range: {}", self.activity));
        }
        if self.wait_seconds.is_nan() || self.wait_seconds < 0.0 {
            return Err(format!("negative wait {}", self.wait_seconds));
        }
        if let Some(fr) = &self.domain_mem_frac {
            let mut sum = 0.0;
            for &f in fr {
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("domain traffic fraction out of range: {f}"));
                }
                sum += f;
            }
            if self.mem_bytes > 0.0 && (sum - 1.0).abs() > 1e-9 {
                return Err(format!("domain traffic fractions sum to {sum}, not 1"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpi_definition() {
        let d = PhaseDemand {
            instructions: 1e9,
            mem_bytes: 64.0 * 2e7,
            ..Default::default()
        };
        assert!((d.tpi() - 0.02).abs() < 1e-12);
        assert!((d.mem_transactions() - 2e7).abs() < 1.0);
    }

    #[test]
    fn tpi_zero_instructions() {
        let d = PhaseDemand {
            instructions: 0.0,
            mem_bytes: 100.0,
            ..Default::default()
        };
        assert_eq!(d.tpi(), 0.0);
    }

    #[test]
    fn default_validates() {
        assert!(PhaseDemand::default().validate().is_ok());
    }

    #[test]
    fn domain_routing_defaults_to_uniform() {
        let d = PhaseDemand::default();
        assert_eq!(d.domain_frac(0, 1), 1.0);
        assert_eq!(d.domain_frac(0, 2), 0.5);
        assert_eq!(d.domain_frac(1, 2), 0.5);
        let pinned = PhaseDemand {
            mem_bytes: 1e9,
            domain_mem_frac: Some([0.9, 0.1, 0.0, 0.0]),
            ..Default::default()
        };
        assert!(pinned.validate().is_ok());
        assert_eq!(pinned.domain_frac(0, 2), 0.9);
        assert_eq!(pinned.domain_frac(1, 2), 0.1);
        let bad = PhaseDemand {
            mem_bytes: 1e9,
            domain_mem_frac: Some([0.9, 0.3, 0.0, 0.0]),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut d = PhaseDemand {
            instructions: 1e9,
            ..Default::default()
        };
        d.avx512_fraction = 1.5;
        assert!(d.validate().is_err());
        d.avx512_fraction = 0.5;
        d.mem_overlap = -0.1;
        assert!(d.validate().is_err());
        d.mem_overlap = 0.5;
        d.active_cores = 0;
        assert!(d.validate().is_err());
    }
}
