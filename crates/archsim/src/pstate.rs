//! CPU pstate table and AVX licence frequency caps.
//!
//! EAR's convention (inherited from the ACPI frequency list exported by the
//! `acpi-cpufreq`/`intel_pstate` drivers): pstate 0 is the turbo bucket,
//! pstate 1 is the nominal frequency, and each subsequent pstate steps down
//! 100 MHz. On the Xeon Gold 6148 used in the paper, nominal is 2.4 GHz and
//! the all-core AVX512 licence caps the frequency at 2.2 GHz — i.e. pstate 3,
//! exactly as §V-A of the paper describes.

/// A pstate index. 0 = turbo, 1 = nominal, increasing = slower.
pub type Pstate = usize;

/// Frequency table of a processor model.
#[derive(Debug, Clone)]
pub struct PstateTable {
    /// Frequencies in kHz, ordered from fastest (index 0, turbo) down.
    freqs_khz: Vec<u64>,
    /// Maximum frequency (kHz) sustainable when all cores run AVX512.
    avx512_max_khz: u64,
    /// Maximum frequency (kHz) sustainable when all cores run AVX2.
    avx2_max_khz: u64,
    /// All-core turbo (kHz): the turbo bucket delivers the single-core
    /// bin only with one active core; with every core active it delivers
    /// this (Skylake-SP turbo bins).
    turbo_all_core_khz: u64,
}

impl PstateTable {
    /// Builds a table for a part with the given turbo and nominal
    /// frequencies, stepping down 100 MHz per pstate to `min_khz`.
    pub fn new(
        turbo_khz: u64,
        nominal_khz: u64,
        min_khz: u64,
        avx512_max_khz: u64,
        avx2_max_khz: u64,
    ) -> Self {
        assert!(turbo_khz >= nominal_khz && nominal_khz >= min_khz && min_khz > 0);
        let mut freqs_khz = vec![turbo_khz];
        let mut f = nominal_khz;
        while f >= min_khz {
            freqs_khz.push(f);
            f -= 100_000;
        }
        // Default all-core turbo: midway between nominal and peak turbo,
        // rounded down to a ratio step (overridable per part).
        let turbo_all_core_khz = nominal_khz + (turbo_khz - nominal_khz) / 2 / 100_000 * 100_000;
        Self {
            freqs_khz,
            avx512_max_khz,
            avx2_max_khz,
            turbo_all_core_khz,
        }
    }

    /// Overrides the all-core turbo bin.
    pub fn with_all_core_turbo(mut self, khz: u64) -> Self {
        assert!(khz >= self.nominal_khz() && khz <= self.freqs_khz[0]);
        self.turbo_all_core_khz = khz;
        self
    }

    /// The Xeon Gold 6148 (Skylake-SP, 20 cores): turbo 3.7 GHz
    /// single-core / 3.1 GHz all-core, nominal 2.4 GHz, min 1.0 GHz,
    /// all-core AVX512 licence 2.2 GHz.
    pub fn xeon_gold_6148() -> Self {
        Self::new(3_700_000, 2_400_000, 1_000_000, 2_200_000, 2_600_000)
            .with_all_core_turbo(3_100_000)
    }

    /// The Xeon Gold 6142M (GPU nodes in the paper): nominal 2.6 GHz,
    /// 3.0 GHz all-core turbo.
    pub fn xeon_gold_6142m() -> Self {
        Self::new(3_700_000, 2_600_000, 1_000_000, 2_200_000, 2_600_000)
            .with_all_core_turbo(3_000_000)
    }

    /// Number of pstates (including turbo).
    pub fn len(&self) -> usize {
        self.freqs_khz.len()
    }

    /// True if the table is empty (never the case for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.freqs_khz.is_empty()
    }

    /// Frequency of `ps` in kHz. Panics if out of range.
    pub fn khz(&self, ps: Pstate) -> u64 {
        self.freqs_khz[ps]
    }

    /// Frequency of `ps` in GHz.
    pub fn ghz(&self, ps: Pstate) -> f64 {
        self.freqs_khz[ps] as f64 * 1e-6
    }

    /// The nominal pstate (1 by construction).
    pub fn nominal(&self) -> Pstate {
        1
    }

    /// Nominal frequency in kHz.
    pub fn nominal_khz(&self) -> u64 {
        self.freqs_khz[1]
    }

    /// The slowest pstate.
    pub fn slowest(&self) -> Pstate {
        self.freqs_khz.len() - 1
    }

    /// Maps a frequency to its pstate. Returns the pstate whose frequency is
    /// closest to `khz` among non-turbo entries (turbo is matched exactly).
    pub fn pstate_for_khz(&self, khz: u64) -> Pstate {
        if khz >= self.freqs_khz[0] {
            return 0;
        }
        let mut best = 1;
        let mut best_d = u64::MAX;
        for (i, &f) in self.freqs_khz.iter().enumerate().skip(1) {
            let d = f.abs_diff(khz);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Converts a 100 MHz ratio (as written to `IA32_PERF_CTL`) to a pstate.
    pub fn pstate_for_ratio(&self, ratio: u8) -> Pstate {
        self.pstate_for_khz(ratio as u64 * 100_000)
    }

    /// Converts a pstate to its 100 MHz ratio.
    pub fn ratio_for(&self, ps: Pstate) -> u8 {
        (self.freqs_khz[ps] / 100_000) as u8
    }

    /// The all-core AVX512 licence frequency cap in kHz (2.2 GHz on the
    /// 6148, i.e. pstate 3 — the paper's §V-A example).
    pub fn avx512_max_khz(&self) -> u64 {
        self.avx512_max_khz
    }

    /// The pstate corresponding to the all-core AVX512 licence cap.
    pub fn avx512_pstate(&self) -> Pstate {
        self.pstate_for_khz(self.avx512_max_khz)
    }

    /// The all-core AVX2 licence frequency cap in kHz.
    pub fn avx2_max_khz(&self) -> u64 {
        self.avx2_max_khz
    }

    /// The all-core turbo bin (kHz).
    pub fn turbo_all_core_khz(&self) -> u64 {
        self.turbo_all_core_khz
    }

    /// The frequency (kHz) actually delivered when `requested` is the
    /// requested pstate and the workload's AVX512 instruction fraction is
    /// `vpi`: AVX512-heavy code cannot exceed the licence cap, and the
    /// effective frequency blends linearly with the fraction of time spent
    /// under the licence (the hardware switches licence levels per ~µs
    /// epoch, which time-averages exactly this way).
    pub fn effective_khz(&self, requested: Pstate, vpi: f64) -> f64 {
        self.effective_khz_active(requested, vpi, 1)
    }

    /// [`PstateTable::effective_khz`] accounting for the turbo bins: with
    /// many active cores the turbo bucket delivers the all-core bin, not
    /// the single-core peak. Non-turbo pstates are unaffected.
    pub fn effective_khz_active(&self, requested: Pstate, vpi: f64, active_cores: usize) -> f64 {
        let mut f_req = self.freqs_khz[requested] as f64;
        if requested == 0 && active_cores > 1 {
            // Linear interpolation between the single-core and all-core
            // bins by active-core fraction is a close fit to the published
            // per-bin tables.
            let span = (self.freqs_khz[0] - self.turbo_all_core_khz) as f64;
            let frac = ((active_cores - 1) as f64 / 19.0).min(1.0);
            f_req -= span * frac;
        }
        let f_cap = f_req.min(self.avx512_max_khz as f64);
        f_req * (1.0 - vpi) + f_cap * vpi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_6148() {
        let t = PstateTable::xeon_gold_6148();
        assert_eq!(t.khz(0), 3_700_000); // turbo
        assert_eq!(t.khz(1), 2_400_000); // nominal
        assert_eq!(t.khz(2), 2_300_000);
        assert_eq!(t.khz(3), 2_200_000); // AVX512 cap == pstate 3 (paper §V-A)
        assert_eq!(t.avx512_pstate(), 3);
        assert_eq!(t.khz(t.slowest()), 1_000_000);
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn pstate_freq_roundtrip() {
        let t = PstateTable::xeon_gold_6148();
        for ps in 0..t.len() {
            assert_eq!(t.pstate_for_khz(t.khz(ps)), ps);
        }
    }

    #[test]
    fn ratio_conversion() {
        let t = PstateTable::xeon_gold_6148();
        assert_eq!(t.ratio_for(1), 24);
        assert_eq!(t.pstate_for_ratio(24), 1);
        assert_eq!(t.pstate_for_ratio(22), 3);
    }

    #[test]
    fn effective_frequency_blends_with_vpi() {
        let t = PstateTable::xeon_gold_6148();
        // Pure scalar at nominal: full 2.4 GHz.
        assert!((t.effective_khz(1, 0.0) - 2_400_000.0).abs() < 1.0);
        // Pure AVX512 at nominal: capped at 2.2 GHz.
        assert!((t.effective_khz(1, 1.0) - 2_200_000.0).abs() < 1.0);
        // Mixed: in between.
        let half = t.effective_khz(1, 0.5);
        assert!(half > 2_200_000.0 && half < 2_400_000.0);
        // Below the cap the licence is irrelevant.
        assert!((t.effective_khz(5, 1.0) - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn pstate_for_khz_clamps_to_turbo() {
        let t = PstateTable::xeon_gold_6148();
        assert_eq!(t.pstate_for_khz(9_000_000), 0);
    }

    #[test]
    fn turbo_bins_scale_with_active_cores() {
        let t = PstateTable::xeon_gold_6148();
        assert_eq!(t.turbo_all_core_khz(), 3_100_000);
        // Single core gets the full bin.
        assert!((t.effective_khz_active(0, 0.0, 1) - 3_700_000.0).abs() < 1.0);
        // All cores get the all-core bin.
        assert!((t.effective_khz_active(0, 0.0, 20) - 3_100_000.0).abs() < 1.0);
        // In between: monotone decreasing.
        let f8 = t.effective_khz_active(0, 0.0, 8);
        assert!(f8 < 3_700_000.0 && f8 > 3_100_000.0);
        // Non-turbo pstates ignore active-core count.
        assert_eq!(
            t.effective_khz_active(1, 0.0, 1),
            t.effective_khz_active(1, 0.0, 40)
        );
    }

    #[test]
    fn gpu_node_nominal() {
        let t = PstateTable::xeon_gold_6142m();
        assert_eq!(t.nominal_khz(), 2_600_000);
    }
}
