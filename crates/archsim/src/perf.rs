//! Analytic performance model.
//!
//! A leading-loads / roofline hybrid: iteration time decomposes into a
//! core-frequency-scalable part, an uncore-frequency-scalable latency part,
//! and a DRAM bandwidth part that only binds near saturation:
//!
//! ```text
//! T_core(f_c) = I · cpi_core / (A · f_c_eff)
//! T_unc(f_u)  = M · uncore_lat_cycles / (A · f_u)
//! T_bw(f_u)   = B / BW(f_u),   BW(f_u) = bw_peak · min(1, f_u / f_sat)
//! T_work      = max(T_core + T_unc + (1 − overlap) · T_bw,  T_bw)
//! ```
//!
//! where `I` is instructions, `M` memory transactions, `B` bytes, `A` active
//! cores and `f_c_eff` the AVX512-licence-blended core frequency. Observed
//! CPI and GB/s are *derived* from `T_work`, which makes the motivating
//! behaviour of the paper's Fig. 1 emergent: lowering the uncore frequency
//! stretches `T_unc`/`T_bw`, which raises measured CPI and lowers measured
//! GB/s — strongly for memory-bound workloads, negligibly for compute-bound
//! ones.

use crate::config::PerfParams;
use crate::demand::PhaseDemand;

/// Breakdown of a phase's work time at given frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Core-scalable component (s).
    pub core_s: f64,
    /// Uncore-latency component (s).
    pub uncore_s: f64,
    /// Exposed DRAM bandwidth component (s).
    pub bandwidth_s: f64,
    /// Total work time (s), excluding waiting.
    pub work_s: f64,
}

/// Achievable main-memory bandwidth (bytes/s) at an uncore frequency.
pub fn achievable_bw(params: &PerfParams, f_uncore_ghz: f64) -> f64 {
    let scale = (f_uncore_ghz / params.bw_sat_ghz).min(1.0);
    params.bw_peak_bytes * scale.max(1e-3)
}

/// Computes the work-time breakdown for `demand` at the given effective core
/// frequency (Hz, already AVX512-blended) and uncore frequency (GHz).
pub fn work_time(
    params: &PerfParams,
    demand: &PhaseDemand,
    f_core_eff_hz: f64,
    f_uncore_ghz: f64,
) -> TimeBreakdown {
    if demand.instructions <= 0.0 && demand.mem_bytes <= 0.0 {
        return TimeBreakdown {
            core_s: 0.0,
            uncore_s: 0.0,
            bandwidth_s: 0.0,
            work_s: 0.0,
        };
    }
    let a = demand.active_cores.max(1) as f64;
    let core_s = demand.instructions * demand.cpi_core / (a * f_core_eff_hz);
    let uncore_s = demand.mem_transactions() * demand.uncore_lat_cycles / (a * f_uncore_ghz * 1e9);
    let bw = achievable_bw(params, f_uncore_ghz);
    let t_bw = demand.mem_bytes / bw;
    let exposed_bw = (1.0 - demand.mem_overlap) * t_bw;
    let serial_path = core_s + uncore_s + exposed_bw;
    let work_s = serial_path.max(t_bw);
    TimeBreakdown {
        core_s,
        uncore_s,
        bandwidth_s: work_s - core_s - uncore_s,
        work_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_bound_demand() -> PhaseDemand {
        PhaseDemand {
            instructions: 3e10,
            mem_bytes: 170e9,
            cpi_core: 2.0,
            uncore_lat_cycles: 6.0,
            mem_overlap: 0.85,
            active_cores: 40,
            ..Default::default()
        }
    }

    fn compute_bound_demand() -> PhaseDemand {
        PhaseDemand {
            instructions: 2e11,
            mem_bytes: 20e9,
            cpi_core: 0.38,
            uncore_lat_cycles: 4.0,
            mem_overlap: 0.6,
            active_cores: 40,
            ..Default::default()
        }
    }

    #[test]
    fn bandwidth_saturates() {
        let p = PerfParams::default();
        assert!((achievable_bw(&p, 2.4) - p.bw_peak_bytes).abs() < 1.0);
        assert!((achievable_bw(&p, 2.1) - p.bw_peak_bytes).abs() < 1.0);
        // Below saturation it is linear.
        let half = achievable_bw(&p, 1.05);
        assert!((half - 0.5 * p.bw_peak_bytes).abs() / p.bw_peak_bytes < 1e-9);
    }

    #[test]
    fn time_monotone_in_core_frequency() {
        let p = PerfParams::default();
        let d = compute_bound_demand();
        let slow = work_time(&p, &d, 1.2e9, 2.4).work_s;
        let fast = work_time(&p, &d, 2.4e9, 2.4).work_s;
        assert!(slow > fast);
        // Compute-bound: halving frequency nearly doubles time.
        assert!(slow / fast > 1.8);
    }

    #[test]
    fn time_monotone_in_uncore_frequency() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        let slow = work_time(&p, &d, 2.4e9, 1.2).work_s;
        let fast = work_time(&p, &d, 2.4e9, 2.4).work_s;
        assert!(slow > fast);
    }

    #[test]
    fn compute_bound_insensitive_to_uncore() {
        let p = PerfParams::default();
        let d = compute_bound_demand();
        let t_hi = work_time(&p, &d, 2.4e9, 2.4).work_s;
        let t_lo = work_time(&p, &d, 2.4e9, 1.8).work_s;
        // < 3 % penalty for a 600 MHz uncore drop on a compute-bound kernel.
        assert!(
            (t_lo - t_hi) / t_hi < 0.03,
            "penalty {}",
            (t_lo - t_hi) / t_hi
        );
    }

    #[test]
    fn memory_bound_sensitive_to_uncore() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        let t_hi = work_time(&p, &d, 2.4e9, 2.4).work_s;
        let t_lo = work_time(&p, &d, 2.4e9, 1.4).work_s;
        // Far below bandwidth saturation the penalty must be large.
        assert!(
            (t_lo - t_hi) / t_hi > 0.15,
            "penalty {}",
            (t_lo - t_hi) / t_hi
        );
    }

    #[test]
    fn bandwidth_floor_binds() {
        let p = PerfParams::default();
        // Pure streaming: negligible compute, lots of bytes.
        let d = PhaseDemand {
            instructions: 1e8,
            mem_bytes: 205e9,
            cpi_core: 0.5,
            mem_overlap: 1.0,
            active_cores: 40,
            ..Default::default()
        };
        let t = work_time(&p, &d, 2.4e9, 2.4);
        // Work time cannot beat the bandwidth bound.
        assert!(t.work_s >= d.mem_bytes / p.bw_peak_bytes - 1e-9);
    }

    #[test]
    fn empty_demand_is_instant() {
        let p = PerfParams::default();
        let d = PhaseDemand {
            instructions: 0.0,
            mem_bytes: 0.0,
            ..Default::default()
        };
        assert_eq!(work_time(&p, &d, 2.4e9, 2.4).work_s, 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        let t = work_time(&p, &d, 2.2e9, 2.0);
        assert!((t.core_s + t.uncore_s + t.bandwidth_s - t.work_s).abs() < 1e-12);
    }
}
