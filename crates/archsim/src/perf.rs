//! Analytic performance model.
//!
//! A leading-loads / roofline hybrid: iteration time decomposes into a
//! core-frequency-scalable part, an uncore-frequency-scalable latency part,
//! and a DRAM bandwidth part that only binds near saturation:
//!
//! ```text
//! T_core(f_c) = I · cpi_core / (A · f_c_eff)
//! T_unc(f_u)  = M · uncore_lat_cycles / (A · f_u)
//! T_bw(f_u)   = B / BW(f_u),   BW(f_u) = bw_peak · min(1, f_u / f_sat)
//! T_work      = max(T_core + T_unc + (1 − overlap) · T_bw,  T_bw)
//! ```
//!
//! where `I` is instructions, `M` memory transactions, `B` bytes, `A` active
//! cores and `f_c_eff` the AVX512-licence-blended core frequency. Observed
//! CPI and GB/s are *derived* from `T_work`, which makes the motivating
//! behaviour of the paper's Fig. 1 emergent: lowering the uncore frequency
//! stretches `T_unc`/`T_bw`, which raises measured CPI and lowers measured
//! GB/s — strongly for memory-bound workloads, negligibly for compute-bound
//! ones.

use crate::config::PerfParams;
use crate::demand::PhaseDemand;

/// Breakdown of a phase's work time at given frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Core-scalable component (s).
    pub core_s: f64,
    /// Uncore-latency component (s).
    pub uncore_s: f64,
    /// Exposed DRAM bandwidth component (s).
    pub bandwidth_s: f64,
    /// Total work time (s), excluding waiting.
    pub work_s: f64,
}

/// Achievable main-memory bandwidth (bytes/s) at an uncore frequency.
pub fn achievable_bw(params: &PerfParams, f_uncore_ghz: f64) -> f64 {
    let scale = (f_uncore_ghz / params.bw_sat_ghz).min(1.0);
    params.bw_peak_bytes * scale.max(1e-3)
}

/// Achievable bandwidth (bytes/s) of a capacity slice — one uncore domain's
/// share of the memory controllers. Same law as [`achievable_bw`] with the
/// peak replaced by the slice's capacity.
pub fn achievable_bw_capacity(peak_bytes: f64, bw_sat_ghz: f64, f_uncore_ghz: f64) -> f64 {
    let scale = (f_uncore_ghz / bw_sat_ghz).min(1.0);
    peak_bytes * scale.max(1e-3)
}

/// Computes the work-time breakdown for `demand` at the given effective core
/// frequency (Hz, already AVX512-blended) and uncore frequency (GHz).
pub fn work_time(
    params: &PerfParams,
    demand: &PhaseDemand,
    f_core_eff_hz: f64,
    f_uncore_ghz: f64,
) -> TimeBreakdown {
    if demand.instructions <= 0.0 && demand.mem_bytes <= 0.0 {
        return TimeBreakdown {
            core_s: 0.0,
            uncore_s: 0.0,
            bandwidth_s: 0.0,
            work_s: 0.0,
        };
    }
    let a = demand.active_cores.max(1) as f64;
    let core_s = demand.instructions * demand.cpi_core / (a * f_core_eff_hz);
    let uncore_s = demand.mem_transactions() * demand.uncore_lat_cycles / (a * f_uncore_ghz * 1e9);
    let bw = achievable_bw(params, f_uncore_ghz);
    let t_bw = demand.mem_bytes / bw;
    let exposed_bw = (1.0 - demand.mem_overlap) * t_bw;
    let serial_path = core_s + uncore_s + exposed_bw;
    let work_s = serial_path.max(t_bw);
    TimeBreakdown {
        core_s,
        uncore_s,
        bandwidth_s: work_s - core_s - uncore_s,
        work_s,
    }
}

/// Work-time breakdown with the memory system split across uncore frequency
/// domains. Domain `d` runs at `f_dom[d]` GHz, carries `frac[d]` of the
/// phase's memory traffic, and owns `1/f_dom.len()` of the node's peak
/// bandwidth (each die fronts its own memory controllers). The latency term
/// sums per-domain contributions; the bandwidth bound is the slowest
/// domain's (traffic streams concurrently, so the laggard exposes the
/// stall). With one domain carrying all traffic this reduces bit-exactly to
/// [`work_time`]: every extra multiply is by 1.0 and every extra add starts
/// from 0.0, both exact in IEEE-754.
pub fn work_time_domains(
    params: &PerfParams,
    demand: &PhaseDemand,
    f_core_eff_hz: f64,
    f_dom: &[f64],
    frac: &[f64],
) -> TimeBreakdown {
    debug_assert_eq!(f_dom.len(), frac.len());
    if demand.instructions <= 0.0 && demand.mem_bytes <= 0.0 {
        return TimeBreakdown {
            core_s: 0.0,
            uncore_s: 0.0,
            bandwidth_s: 0.0,
            work_s: 0.0,
        };
    }
    let a = demand.active_cores.max(1) as f64;
    let core_s = demand.instructions * demand.cpi_core / (a * f_core_eff_hz);
    let nd = f_dom.len().max(1) as f64;
    let peak_dom = params.bw_peak_bytes / nd;
    let mut uncore_s = 0.0;
    let mut t_bw: f64 = 0.0;
    for (&f_u, &fr) in f_dom.iter().zip(frac.iter()) {
        let m_dom = demand.mem_transactions() * fr;
        uncore_s += m_dom * demand.uncore_lat_cycles / (a * f_u * 1e9);
        let bw = achievable_bw_capacity(peak_dom, params.bw_sat_ghz, f_u);
        t_bw = t_bw.max(demand.mem_bytes * fr / bw);
    }
    let exposed_bw = (1.0 - demand.mem_overlap) * t_bw;
    let serial_path = core_s + uncore_s + exposed_bw;
    let work_s = serial_path.max(t_bw);
    TimeBreakdown {
        core_s,
        uncore_s,
        bandwidth_s: work_s - core_s - uncore_s,
        work_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_bound_demand() -> PhaseDemand {
        PhaseDemand {
            instructions: 3e10,
            mem_bytes: 170e9,
            cpi_core: 2.0,
            uncore_lat_cycles: 6.0,
            mem_overlap: 0.85,
            active_cores: 40,
            ..Default::default()
        }
    }

    fn compute_bound_demand() -> PhaseDemand {
        PhaseDemand {
            instructions: 2e11,
            mem_bytes: 20e9,
            cpi_core: 0.38,
            uncore_lat_cycles: 4.0,
            mem_overlap: 0.6,
            active_cores: 40,
            ..Default::default()
        }
    }

    #[test]
    fn bandwidth_saturates() {
        let p = PerfParams::default();
        assert!((achievable_bw(&p, 2.4) - p.bw_peak_bytes).abs() < 1.0);
        assert!((achievable_bw(&p, 2.1) - p.bw_peak_bytes).abs() < 1.0);
        // Below saturation it is linear.
        let half = achievable_bw(&p, 1.05);
        assert!((half - 0.5 * p.bw_peak_bytes).abs() / p.bw_peak_bytes < 1e-9);
    }

    #[test]
    fn time_monotone_in_core_frequency() {
        let p = PerfParams::default();
        let d = compute_bound_demand();
        let slow = work_time(&p, &d, 1.2e9, 2.4).work_s;
        let fast = work_time(&p, &d, 2.4e9, 2.4).work_s;
        assert!(slow > fast);
        // Compute-bound: halving frequency nearly doubles time.
        assert!(slow / fast > 1.8);
    }

    #[test]
    fn time_monotone_in_uncore_frequency() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        let slow = work_time(&p, &d, 2.4e9, 1.2).work_s;
        let fast = work_time(&p, &d, 2.4e9, 2.4).work_s;
        assert!(slow > fast);
    }

    #[test]
    fn compute_bound_insensitive_to_uncore() {
        let p = PerfParams::default();
        let d = compute_bound_demand();
        let t_hi = work_time(&p, &d, 2.4e9, 2.4).work_s;
        let t_lo = work_time(&p, &d, 2.4e9, 1.8).work_s;
        // < 3 % penalty for a 600 MHz uncore drop on a compute-bound kernel.
        assert!(
            (t_lo - t_hi) / t_hi < 0.03,
            "penalty {}",
            (t_lo - t_hi) / t_hi
        );
    }

    #[test]
    fn memory_bound_sensitive_to_uncore() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        let t_hi = work_time(&p, &d, 2.4e9, 2.4).work_s;
        let t_lo = work_time(&p, &d, 2.4e9, 1.4).work_s;
        // Far below bandwidth saturation the penalty must be large.
        assert!(
            (t_lo - t_hi) / t_hi > 0.15,
            "penalty {}",
            (t_lo - t_hi) / t_hi
        );
    }

    #[test]
    fn bandwidth_floor_binds() {
        let p = PerfParams::default();
        // Pure streaming: negligible compute, lots of bytes.
        let d = PhaseDemand {
            instructions: 1e8,
            mem_bytes: 205e9,
            cpi_core: 0.5,
            mem_overlap: 1.0,
            active_cores: 40,
            ..Default::default()
        };
        let t = work_time(&p, &d, 2.4e9, 2.4);
        // Work time cannot beat the bandwidth bound.
        assert!(t.work_s >= d.mem_bytes / p.bw_peak_bytes - 1e-9);
    }

    #[test]
    fn empty_demand_is_instant() {
        let p = PerfParams::default();
        let d = PhaseDemand {
            instructions: 0.0,
            mem_bytes: 0.0,
            ..Default::default()
        };
        assert_eq!(work_time(&p, &d, 2.4e9, 2.4).work_s, 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        let t = work_time(&p, &d, 2.2e9, 2.0);
        assert!((t.core_s + t.uncore_s + t.bandwidth_s - t.work_s).abs() < 1e-12);
    }

    #[test]
    fn single_domain_is_bit_identical_to_scalar_path() {
        let p = PerfParams::default();
        for d in [memory_bound_demand(), compute_bound_demand()] {
            for f_u in [1.2, 1.7, 2.0, 2.4] {
                for f_c in [1.2e9, 2.2e9, 2.4e9] {
                    let scalar = work_time(&p, &d, f_c, f_u);
                    let vector = work_time_domains(&p, &d, f_c, &[f_u], &[1.0]);
                    // Bitwise, not approximate: the N=1 reduction is exact.
                    assert_eq!(scalar, vector);
                }
            }
        }
    }

    #[test]
    fn down_scaling_the_idle_domain_is_free() {
        let p = PerfParams::default();
        let d = memory_bound_demand();
        // All traffic on domain 0; domain 1 idle.
        let hi = work_time_domains(&p, &d, 2.4e9, &[2.4, 2.4], &[1.0, 0.0]).work_s;
        let idle_low = work_time_domains(&p, &d, 2.4e9, &[2.4, 1.2], &[1.0, 0.0]).work_s;
        let host_low = work_time_domains(&p, &d, 2.4e9, &[1.2, 2.4], &[1.0, 0.0]).work_s;
        assert_eq!(hi, idle_low, "idle domain frequency must not matter");
        assert!(host_low > hi * 1.1, "traffic domain must be sensitive");
    }

    #[test]
    fn split_traffic_uses_both_capacity_slices() {
        let p = PerfParams::default();
        // Pure streaming near node peak, split evenly: feasible at full
        // frequency, but one saturated slice cannot carry it alone.
        let d = PhaseDemand {
            instructions: 1e8,
            mem_bytes: 200e9,
            mem_overlap: 1.0,
            active_cores: 40,
            ..Default::default()
        };
        let even = work_time_domains(&p, &d, 2.4e9, &[2.4, 2.4], &[0.5, 0.5]).work_s;
        let skewed = work_time_domains(&p, &d, 2.4e9, &[2.4, 2.4], &[1.0, 0.0]).work_s;
        assert!(skewed > even * 1.5, "skewed {skewed} even {even}");
    }
}
