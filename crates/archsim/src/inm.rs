//! Intel Node Manager (INM) model.
//!
//! The paper measures DC node power through the Intel Node Manager, whose
//! accumulated-energy counter updates once per second (paper §III,
//! footnote 2). EARL derives average DC power from energy deltas over
//! ≥ 10 s windows precisely because of this coarse update granularity.
//!
//! The model integrates true DC power continuously but only *publishes* the
//! counter value at whole update periods, exactly like the firmware.

use crate::time::SimTime;

/// The node-level DC energy meter.
#[derive(Debug, Clone)]
pub struct Inm {
    /// Exact accumulated energy (J) — simulator ground truth.
    live_j: f64,
    /// Counter value visible to software (mJ), updated every period.
    published_mj: u64,
    /// Timestamp of the last publication (software can read it alongside
    /// the counter, as IPMI reports a sample timestamp).
    published_at: SimTime,
    /// Next publication boundary.
    next_pub: SimTime,
    /// Publication period (s); 1.0 for the paper's firmware.
    period_s: f64,
    /// Fault injection: no publications happen before this instant (the
    /// BMC firmware occasionally stalls; EAR must tolerate stale energy
    /// readings). Accumulation continues, so the backlog is published at
    /// the first boundary after recovery.
    stalled_until: SimTime,
}

impl Inm {
    /// Creates a meter publishing every `period_s` seconds.
    pub fn new(period_s: f64) -> Self {
        assert!(period_s > 0.0);
        Self {
            live_j: 0.0,
            published_mj: 0,
            published_at: SimTime::ZERO,
            next_pub: SimTime::from_secs(period_s),
            period_s,
            stalled_until: SimTime::ZERO,
        }
    }

    /// Integrates `power_w` over `[start, start + dt)`, publishing the
    /// counter at every period boundary crossed.
    pub fn accumulate(&mut self, start: SimTime, dt: f64, power_w: f64) {
        debug_assert!(dt >= 0.0 && power_w >= 0.0);
        let end = start + dt;
        let mut cursor = start;
        while self.next_pub <= end {
            let span = self.next_pub - cursor;
            self.live_j += power_w * span;
            if self.next_pub >= self.stalled_until {
                self.published_mj = (self.live_j * 1e3).round() as u64;
                self.published_at = self.next_pub;
            }
            cursor = self.next_pub;
            self.next_pub += self.period_s;
        }
        self.live_j += power_w * (end - cursor);
    }

    /// The counter value software reads (mJ since boot, last published).
    pub fn energy_mj(&self) -> u64 {
        self.published_mj
    }

    /// Fault injection: suppress publications until `now + seconds`.
    pub fn stall_for(&mut self, now: SimTime, seconds: f64) {
        self.stalled_until = now + seconds;
    }

    /// Timestamp of the last counter publication.
    pub fn published_at(&self) -> SimTime {
        self.published_at
    }

    /// Simulator ground truth (J), for tests and exact accounting.
    pub fn exact_energy_j(&self) -> f64 {
        self.live_j
    }
}

impl Default for Inm {
    fn default() -> Self {
        Self::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_only_at_period_boundaries() {
        let mut inm = Inm::default();
        // 300 W for 0.9 s: nothing published yet.
        inm.accumulate(SimTime::ZERO, 0.9, 300.0);
        assert_eq!(inm.energy_mj(), 0);
        assert!((inm.exact_energy_j() - 270.0).abs() < 1e-9);
        // 0.2 s more crosses the 1 s boundary: exactly 300 J published.
        inm.accumulate(SimTime::from_secs(0.9), 0.2, 300.0);
        assert_eq!(inm.energy_mj(), 300_000);
        assert!((inm.exact_energy_j() - 330.0).abs() < 1e-9);
    }

    #[test]
    fn long_interval_crosses_many_boundaries() {
        let mut inm = Inm::default();
        inm.accumulate(SimTime::ZERO, 10.5, 100.0);
        // Published at t = 10 s: 1000 J.
        assert_eq!(inm.energy_mj(), 1_000_000);
        assert!((inm.exact_energy_j() - 1050.0).abs() < 1e-9);
    }

    #[test]
    fn power_changes_integrate_exactly() {
        let mut inm = Inm::default();
        inm.accumulate(SimTime::ZERO, 0.5, 200.0);
        inm.accumulate(SimTime::from_secs(0.5), 0.5, 400.0);
        assert_eq!(inm.energy_mj(), 300_000); // 100 + 200 J at the boundary
    }

    #[test]
    fn stall_suppresses_then_recovers() {
        let mut inm = Inm::default();
        inm.stall_for(SimTime::ZERO, 2.5);
        inm.accumulate(SimTime::ZERO, 2.0, 100.0);
        // Two boundaries crossed, but the meter is stalled.
        assert_eq!(inm.energy_mj(), 0);
        assert_eq!(inm.published_at(), SimTime::ZERO);
        // Recovery: the 3 s boundary publishes the full backlog.
        inm.accumulate(SimTime::from_secs(2.0), 1.5, 100.0);
        assert_eq!(inm.energy_mj(), 300_000);
        assert_eq!(inm.published_at(), SimTime::from_secs(3.0));
    }

    #[test]
    fn zero_power_is_fine() {
        let mut inm = Inm::default();
        inm.accumulate(SimTime::ZERO, 5.0, 0.0);
        assert_eq!(inm.energy_mj(), 0);
    }
}
