//! The simulated node.
//!
//! A [`Node`] owns two (configurable) sockets, each with its own MSR file
//! and firmware UFS controller, plus DRAM, optional GPUs, an INM energy
//! meter and the master clock. Software (EARL) interacts with it exactly as
//! on real hardware: it writes `IA32_PERF_CTL` and `MSR_UNCORE_RATIO_LIMIT`,
//! and reads counters/energy through [`Node::snapshot`].
//!
//! Execution is demand-driven: [`Node::run_phase`] consumes a
//! [`PhaseDemand`] and advances simulated time in hardware-control-loop
//! quanta (10 ms), so the firmware UFS reacts *during* a phase and power is
//! integrated against the uncore frequency actually in effect — mid-phase
//! uncore transitions cost/save real energy, as on hardware.

use crate::config::NodeConfig;
use crate::counters::{CounterSnapshot, SocketCounters, MPERF_SENTINEL_KHZ};
use crate::demand::PhaseDemand;
use crate::hwufs::{HwUfsController, HwUfsInput};
use crate::inm::Inm;
use crate::msr::{self, addr, MsrError, MsrFile};
use crate::perf;
use crate::power::{self, SocketPowerInput};
use crate::pstate::Pstate;
use crate::rng::Xoshiro256;
use crate::time::{Clock, SimTime};

/// Duty cycle at which OS-idle cores wake for housekeeping; they contribute
/// this fraction of core-seconds to APERF/MPERF (halted cores do not tick
/// those MSRs at all).
const IDLE_HOUSEKEEPING_DUTY: f64 = 0.02;

/// CPI of a busy-wait loop (MPI polling, `cudaStreamSynchronize`).
/// Public because workload calibration must account for spin instructions
/// when inverting the CPI target.
pub const SPIN_CPI: f64 = 0.5;

/// RAPL PL1 hysteresis: the limiter releases one throttle step only once
/// the running average has fallen below this fraction of the limit, so the
/// effective pstate does not chatter around the cap.
const RAPL_LIFT_FRACTION: f64 = 0.98;

/// Floating-point accumulators behind a socket's integer counters.
#[derive(Debug, Clone, Copy, Default)]
struct SocketAccum {
    instructions: f64,
    core_cycles: f64,
    aperf_kcycles: f64,
    mperf_kcycles: f64,
    cas_transactions: f64,
    avx512_instructions: f64,
    uclk_kcycles: f64,
    pkg_energy_uj: f64,
    dram_energy_uj: f64,
    uclk_dom_kcycles: [f64; msr::MAX_UNCORE_DOMAINS],
    cas_dom_transactions: [f64; msr::MAX_UNCORE_DOMAINS],
}

impl SocketAccum {
    fn to_counters(self, uncore_domains: u8) -> SocketCounters {
        let mut uclk_dom = [0u64; msr::MAX_UNCORE_DOMAINS];
        let mut cas_dom = [0u64; msr::MAX_UNCORE_DOMAINS];
        for d in 0..uncore_domains as usize {
            uclk_dom[d] = self.uclk_dom_kcycles[d] as u64;
            cas_dom[d] = self.cas_dom_transactions[d] as u64;
        }
        SocketCounters {
            instructions: self.instructions as u64,
            core_cycles: self.core_cycles as u64,
            aperf_kcycles: self.aperf_kcycles as u64,
            mperf_kcycles: self.mperf_kcycles as u64,
            cas_transactions: self.cas_transactions as u64,
            avx512_instructions: self.avx512_instructions as u64,
            uclk_kcycles: self.uclk_kcycles as u64,
            pkg_energy_uj: self.pkg_energy_uj as u64,
            dram_energy_uj: self.dram_energy_uj as u64,
            uncore_domains,
            uclk_dom_kcycles: uclk_dom,
            cas_dom_transactions: cas_dom,
        }
    }
}

/// One socket: MSR file, one firmware UFS controller per uncore domain,
/// counters.
#[derive(Debug, Clone)]
pub struct Socket {
    msr: MsrFile,
    /// Firmware UFS controllers, one per uncore frequency domain. Each
    /// domain pairs with its own TPMI ratio-limit/perf-status registers in
    /// `msr` (domain 0 doubling as the legacy 0x620/0x621 pair).
    domains: Vec<HwUfsController>,
    accum: SocketAccum,
    /// Decoded RAPL energy unit (J/count). `MSR_RAPL_POWER_UNIT` is
    /// read-only fused configuration, so the decode is hoisted out of the
    /// per-quantum loop.
    rapl_unit_j: f64,
    /// Decoded PL1 state, refreshed on every `MSR_PKG_POWER_LIMIT` write so
    /// the per-quantum limiter never re-parses the register. Resets to
    /// disabled: an untouched socket never throttles.
    rapl_enabled: bool,
    /// PL1 power limit (W). Valid only while `rapl_enabled`.
    rapl_limit_w: f64,
    /// PL1 averaging window (s). Valid only while `rapl_enabled`.
    rapl_window_s: f64,
    /// Running-average package power (W) over the PL1 window — an
    /// exponential average with time constant `rapl_window_s`, the same
    /// shape real RAPL firmware uses for its sliding estimate.
    rapl_avg_w: f64,
    /// Throttle depth: how many pstates below the OS request the limiter
    /// is currently clamping this socket.
    rapl_throttle: u8,
}

impl Socket {
    fn new(config: &NodeConfig) -> Self {
        let nd = config.uncore_domains.clamp(1, msr::MAX_UNCORE_DOMAINS);
        let mut msr = MsrFile::with_domains(config.uncore_min_ratio, config.uncore_max_ratio, nd);
        // Boot at nominal frequency, uncore at the platform maximum.
        msr.poke(
            addr::IA32_PERF_CTL,
            msr::pack_perf_ctl(config.pstates.ratio_for(1)),
        );
        msr.poke(
            addr::IA32_PERF_STATUS,
            msr::pack_perf_ctl(config.pstates.ratio_for(1)),
        );
        let rapl_unit_j = msr::rapl_energy_unit_joules(msr.peek(addr::MSR_RAPL_POWER_UNIT));
        Self {
            msr,
            domains: (0..nd)
                .map(|_| HwUfsController::new(config.hwufs.clone(), config.uncore_max_ratio))
                .collect(),
            accum: SocketAccum::default(),
            rapl_unit_j,
            rapl_enabled: false,
            rapl_limit_w: 0.0,
            rapl_window_s: 1.0,
            rapl_avg_w: 0.0,
            rapl_throttle: 0,
        }
    }

    /// Re-decodes the cached PL1 state from `MSR_PKG_POWER_LIMIT`.
    /// Disabling the limit clears the window estimate and releases any
    /// throttle, exactly as clearing the enable bit does on hardware.
    fn refresh_rapl_cache(&mut self) {
        let unit = self.msr.peek(addr::MSR_RAPL_POWER_UNIT);
        let (limit_w, window_s, enabled) =
            msr::unpack_pkg_power_limit(self.msr.peek(addr::MSR_PKG_POWER_LIMIT), unit);
        self.rapl_enabled = enabled;
        self.rapl_limit_w = limit_w;
        self.rapl_window_s = window_s.max(1e-3);
        if !enabled {
            self.rapl_avg_w = 0.0;
            self.rapl_throttle = 0;
        }
    }

    /// The limiter's current running-average package power estimate (W).
    pub fn rapl_avg_power_w(&self) -> f64 {
        self.rapl_avg_w
    }

    /// How many pstates below the OS request PL1 is currently clamping.
    pub fn rapl_throttle_steps(&self) -> u8 {
        self.rapl_throttle
    }

    /// Number of uncore frequency domains on this socket.
    pub fn uncore_domains(&self) -> usize {
        self.domains.len()
    }

    /// Current uncore ratio of domain 0 (100 MHz units) — the legacy
    /// single-knob view.
    pub fn uncore_ratio(&self) -> u8 {
        self.domains[0].current_ratio()
    }

    /// Current uncore ratio of domain `d` (100 MHz units).
    pub fn uncore_ratio_dom(&self, d: usize) -> u8 {
        self.domains[d].current_ratio()
    }

    /// Programmed uncore limits (min, max) of domain `domain`, in 100 MHz
    /// units.
    pub fn uncore_limits(&self, domain: usize) -> (u8, u8) {
        msr::unpack_uncore_ratio_limit(self.msr.peek(addr::tpmi_ratio_limit(domain)))
    }

    /// Requested CPU ratio from `IA32_PERF_CTL`.
    pub fn requested_ratio(&self) -> u8 {
        msr::unpack_perf_ratio(self.msr.peek(addr::IA32_PERF_CTL))
    }

    fn epb(&self) -> u8 {
        (self.msr.peek(addr::IA32_ENERGY_PERF_BIAS) & 0xF) as u8
    }
}

/// Result of running one phase on the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseOutcome {
    /// When the phase started.
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
    /// Seconds spent in the work portion.
    pub work_s: f64,
    /// Seconds spent waiting.
    pub wait_s: f64,
}

impl PhaseOutcome {
    /// Total phase duration (s).
    pub fn duration_s(&self) -> f64 {
        self.work_s + self.wait_s
    }
}

/// A simulated compute node.
///
/// ```
/// use ear_archsim::{msr, Node, NodeConfig, PhaseDemand};
///
/// let mut node = Node::new(NodeConfig::sd530_6148(), 42);
/// // Pin the uncore at 1.8 GHz through the same MSR software uses:
/// node.write_msr(0, msr::addr::MSR_UNCORE_RATIO_LIMIT,
///     msr::pack_uncore_ratio_limit(18, 18)).unwrap();
/// node.run_phase(&PhaseDemand {
///     instructions: 1e10,
///     mem_bytes: 2e9,
///     active_cores: 40,
///     ..Default::default()
/// });
/// assert!((node.socket(0).uncore_ratio()) == 18);
/// assert!(node.dc_energy_exact_j() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Node {
    /// The hardware configuration (public: models and tests read it).
    pub config: NodeConfig,
    clock: Clock,
    sockets: Vec<Socket>,
    inm: Inm,
    rng: Xoshiro256,
    /// Memoised `pstate_for_ratio` lookup (ratio → pstate): the requested
    /// ratio changes only when software writes `IA32_PERF_CTL`, but the
    /// table scan used to run once per 10 ms quantum.
    ps_cache: std::cell::Cell<(u8, Pstate)>,
}

impl Node {
    /// Boots a node with the given configuration and noise seed.
    pub fn new(config: NodeConfig, seed: u64) -> Self {
        assert!(
            config.sockets <= crate::counters::MAX_SOCKETS,
            "at most {} sockets supported",
            crate::counters::MAX_SOCKETS
        );
        crate::stats::record_node_domains(config.uncore_domains.clamp(1, msr::MAX_UNCORE_DOMAINS));
        let sockets: Vec<Socket> = (0..config.sockets).map(|_| Socket::new(&config)).collect();
        let boot_ratio = sockets[0].requested_ratio();
        let boot_ps = config.pstates.pstate_for_ratio(boot_ratio);
        Self {
            config,
            clock: Clock::new(),
            sockets,
            inm: Inm::default(),
            rng: Xoshiro256::seed_from_u64(seed),
            ps_cache: std::cell::Cell::new((boot_ratio, boot_ps)),
        }
    }

    /// Memoised `pstate_for_ratio` (same result as the table scan).
    fn cached_pstate_for(&self, ratio: u8) -> Pstate {
        let (cached_ratio, cached_ps) = self.ps_cache.get();
        if cached_ratio == ratio {
            cached_ps
        } else {
            let ps = self.config.pstates.pstate_for_ratio(ratio);
            self.ps_cache.set((ratio, ps));
            ps
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Immutable access to a socket (MSRs, uncore state).
    pub fn socket(&self, idx: usize) -> &Socket {
        &self.sockets[idx]
    }

    /// Number of sockets.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Software MSR read on a socket.
    pub fn read_msr(&self, socket: usize, msr: u32) -> Result<u64, MsrError> {
        self.sockets[socket].msr.read(msr)
    }

    /// Software MSR write on a socket. Uncore-limit writes — through the
    /// legacy 0x620 address or a per-domain TPMI register — take effect on
    /// the addressed domain's firmware controller immediately (pinning
    /// min == max overrides the control loop, as the paper's eUFS relies
    /// on).
    pub fn write_msr(&mut self, socket: usize, msr: u32, value: u64) -> Result<(), MsrError> {
        self.sockets[socket].msr.write(msr, value)?;
        if let Some(d) = msr::uncore_domain_of_ratio_limit(msr) {
            let (min, max) = msr::unpack_uncore_ratio_limit(value);
            self.sockets[socket].domains[d].clamp_to_limits(min, max);
        }
        if msr == addr::MSR_PKG_POWER_LIMIT {
            self.sockets[socket].refresh_rapl_cache();
        }
        Ok(())
    }

    /// Convenience: programs a PL1 package power limit (`pkg_limit_w` watts
    /// per socket, averaged over `window_s` seconds) on every socket,
    /// through the same `MSR_PKG_POWER_LIMIT` write path software uses.
    pub fn set_rapl_limit_w(&mut self, pkg_limit_w: f64, window_s: f64) -> Result<(), MsrError> {
        for i in 0..self.sockets.len() {
            let unit = self.sockets[i].msr.peek(addr::MSR_RAPL_POWER_UNIT);
            let v = msr::pack_pkg_power_limit(pkg_limit_w, window_s, unit);
            self.write_msr(i, addr::MSR_PKG_POWER_LIMIT, v)?;
        }
        Ok(())
    }

    /// Clears PL1 on every socket: the limiter disables, releases any
    /// throttle and forgets its window estimate.
    pub fn clear_rapl_limit(&mut self) {
        for i in 0..self.sockets.len() {
            // A disabled write is always valid.
            let _ = self.write_msr(i, addr::MSR_PKG_POWER_LIMIT, 0);
        }
    }

    /// True when any socket has PL1 enabled.
    pub fn rapl_enabled(&self) -> bool {
        self.sockets.iter().any(|s| s.rapl_enabled)
    }

    /// Deepest PL1 throttle across sockets (pstates below the OS request).
    pub fn rapl_throttle_steps(&self) -> u8 {
        self.sockets
            .iter()
            .map(|s| s.rapl_throttle)
            .max()
            .unwrap_or(0)
    }

    /// The pstate the cores actually run at: the OS request plus any RAPL
    /// PL1 throttle, saturating at the slowest pstate. Equals
    /// [`Node::requested_pstate`] whenever no limiter is engaged.
    pub fn effective_pstate(&self) -> Pstate {
        let ps = self.requested_pstate();
        let throttle = self.rapl_throttle_steps() as usize;
        if throttle == 0 {
            ps
        } else {
            (ps + throttle).min(self.config.pstates.slowest())
        }
    }

    /// Convenience: sets the CPU pstate on every core of every socket
    /// (EAR applies node-level frequencies). `IA32_PERF_CTL` accepts any
    /// ratio, so this cannot fault; the write goes through the same MSR
    /// path software uses.
    pub fn set_cpu_pstate(&mut self, ps: Pstate) {
        let ratio = self.config.pstates.ratio_for(ps);
        for s in &mut self.sockets {
            let _ = s.msr.write(addr::IA32_PERF_CTL, msr::pack_perf_ctl(ratio));
        }
    }

    /// The CPU pstate currently requested (socket 0; EAR keeps sockets in
    /// lock-step).
    pub fn requested_pstate(&self) -> Pstate {
        self.cached_pstate_for(self.sockets[0].requested_ratio())
    }

    /// Convenience: programs the same uncore ratio limits into *every*
    /// domain of every socket — the single-knob semantics EAR's package
    /// policies assume.
    pub fn set_uncore_limits(&mut self, min_ratio: u8, max_ratio: u8) -> Result<(), MsrError> {
        let v = msr::pack_uncore_ratio_limit(min_ratio, max_ratio);
        for i in 0..self.sockets.len() {
            for d in 0..self.sockets[i].domains.len() {
                self.write_msr(i, addr::tpmi_ratio_limit(d), v)?;
            }
        }
        Ok(())
    }

    /// Programs the ratio limits of one uncore domain on every socket
    /// (EAR keeps sockets in lock-step; domains are the per-die knob).
    pub fn set_uncore_limits_dom(
        &mut self,
        domain: usize,
        min_ratio: u8,
        max_ratio: u8,
    ) -> Result<(), MsrError> {
        let v = msr::pack_uncore_ratio_limit(min_ratio, max_ratio);
        for i in 0..self.sockets.len() {
            self.write_msr(i, addr::tpmi_ratio_limit(domain), v)?;
        }
        Ok(())
    }

    /// Programmed uncore limits (min, max) of one `(socket, domain)` pair.
    /// Both indices are explicit: sockets can diverge if software writes
    /// them individually, and domains are independent knobs by design, so
    /// there is no single "node-wide" limit to report.
    pub fn uncore_limits(&self, socket: usize, domain: usize) -> (u8, u8) {
        self.sockets[socket].uncore_limits(domain)
    }

    /// Number of uncore frequency domains per socket.
    pub fn uncore_domain_count(&self) -> usize {
        self.sockets[0].domains.len()
    }

    /// Current average uncore frequency across sockets and domains (GHz) —
    /// the legacy single-knob reading.
    pub fn current_uncore_ghz(&self) -> f64 {
        let sum: f64 = self
            .sockets
            .iter()
            .map(|s| {
                let dom_sum: f64 = s
                    .domains
                    .iter()
                    .map(|u| u.current_ratio() as f64 * 0.1)
                    .sum();
                dom_sum / s.domains.len() as f64
            })
            .sum();
        sum / self.sockets.len() as f64
    }

    /// Current average uncore frequency of domain `d` across sockets (GHz).
    pub fn domain_uncore_ghz(&self, d: usize) -> f64 {
        let sum: f64 = self
            .sockets
            .iter()
            .map(|s| s.domains[d].current_ratio() as f64 * 0.1)
            .sum();
        sum / self.sockets.len() as f64
    }

    /// Takes a counter snapshot (what EARL reads at signature boundaries).
    /// Allocation-free: the per-socket counters land in the snapshot's
    /// inline [`crate::counters::SocketSet`].
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            time: self.clock.now(),
            sockets: self
                .sockets
                .iter()
                .map(|s| s.accum.to_counters(s.domains.len() as u8))
                .collect(),
            dc_energy_mj: self.inm.energy_mj(),
            dc_energy_at: self.inm.published_at(),
            dc_energy_exact_j: self.inm.exact_energy_j(),
        }
    }

    /// Exact accumulated DC energy (J), for accounting.
    pub fn dc_energy_exact_j(&self) -> f64 {
        self.inm.exact_energy_j()
    }

    /// Fault injection: the node's power meter (INM/BMC) stops publishing
    /// for `seconds` from now. Software reading the DC energy counter sees
    /// a stale value and timestamp until recovery.
    pub fn inject_power_meter_stall(&mut self, seconds: f64) {
        self.inm.stall_for(self.clock.now(), seconds);
    }

    /// Runs one workload phase to completion and returns its outcome.
    pub fn run_phase(&mut self, demand: &PhaseDemand) -> PhaseOutcome {
        debug_assert!(demand.validate().is_ok(), "{:?}", demand.validate());
        let start = self.clock.now();
        let ps = self.requested_pstate();
        let f_eff_req_khz = self.config.pstates.effective_khz_active(
            ps,
            demand.avx512_fraction,
            demand.active_cores,
        );
        // With a PL1 limiter armed the effective pstate can change at any
        // quantum boundary, so the effective frequency is re-derived per
        // quantum and fast-forward (which assumes steady state) is off.
        // Unarmed, both collapse to exactly the pre-RAPL computation.
        let rapl_on = self.rapl_enabled();
        let ff = self.config.fast_forward && !rapl_on;
        // One multiplicative noise draw per phase: run-to-run variation,
        // not within-run jitter (the paper averages three runs).
        let t_noise = self.rng.noise_factor(self.config.noise_sigma);
        let p_noise = self.rng.noise_factor(self.config.noise_sigma * 0.5);

        let quantum = self.config.hwufs.period_s;
        let nd = self.uncore_domain_count();
        let mut frac = [0.0f64; msr::MAX_UNCORE_DOMAINS];
        for (d, f) in frac.iter_mut().enumerate().take(nd) {
            *f = demand.domain_frac(d, nd);
        }
        let mut work_s = 0.0;
        if demand.instructions > 0.0 || demand.mem_bytes > 0.0 {
            let mut remaining = 1.0f64;
            while remaining > 1e-12 {
                let f_eff_khz = if rapl_on {
                    self.config.pstates.effective_khz_active(
                        self.effective_pstate(),
                        demand.avx512_fraction,
                        demand.active_cores,
                    )
                } else {
                    f_eff_req_khz
                };
                let mut f_dom = [0.0f64; msr::MAX_UNCORE_DOMAINS];
                for (d, f) in f_dom.iter_mut().enumerate().take(nd) {
                    *f = self.domain_uncore_ghz(d);
                }
                let t_total = perf::work_time_domains(
                    &self.config.perf,
                    demand,
                    f_eff_khz * 1e3,
                    &f_dom[..nd],
                    &frac[..nd],
                )
                .work_s
                    * t_noise;
                if t_total <= 0.0 {
                    break;
                }
                let gbs = demand.mem_bytes / t_total / 1e9;
                // Quantum fast-forward: with the firmware UFS settled, every
                // further quantum repeats the same inputs — the ratio, and
                // hence t_total and all rates, are constant to the end of
                // the phase. Integrate the remainder in one step.
                let rest = remaining * t_total;
                if ff && rest > quantum && self.ufs_settled(demand, f_eff_khz, gbs, false) {
                    self.advance_interval(rest, demand, f_eff_khz, remaining, gbs, p_noise, false);
                    work_s += rest;
                    break;
                }
                let dt = rest.min(quantum);
                let frac = dt / t_total;
                remaining = (remaining - frac).max(0.0);
                self.advance_interval(dt, demand, f_eff_khz, frac, gbs, p_noise, false);
                work_s += dt;
            }
        }

        let mut wait_s = 0.0;
        while wait_s < demand.wait_seconds {
            let rest = demand.wait_seconds - wait_s;
            if ff && rest > quantum && self.ufs_settled(demand, f_eff_req_khz, 0.0, true) {
                self.advance_interval(rest, demand, f_eff_req_khz, 0.0, 0.0, p_noise, true);
                wait_s += rest;
                break;
            }
            let dt = rest.min(quantum);
            self.advance_interval(dt, demand, f_eff_req_khz, 0.0, 0.0, p_noise, true);
            wait_s += dt;
        }

        PhaseOutcome {
            start,
            end: self.clock.now(),
            work_s,
            wait_s,
        }
    }

    /// Advances simulated time with the node idle (job gaps).
    pub fn run_idle(&mut self, seconds: f64) {
        let idle = PhaseDemand {
            instructions: 0.0,
            mem_bytes: 0.0,
            active_cores: 0,
            wait_seconds: seconds,
            wait_busy: false,
            ..Default::default()
        };
        let quantum = self.config.hwufs.period_s;
        let f_khz = self.config.pstates.nominal_khz() as f64;
        let ff = self.config.fast_forward && !self.rapl_enabled();
        let mut done = 0.0;
        while done < seconds {
            let rest = seconds - done;
            if ff && rest > quantum && self.ufs_settled(&idle, f_khz, 0.0, true) {
                self.advance_interval(rest, &idle, f_khz, 0.0, 0.0, 1.0, true);
                break;
            }
            let dt = rest.min(quantum);
            self.advance_interval(dt, &idle, f_khz, 0.0, 0.0, 1.0, true);
            done += dt;
        }
    }

    /// True when every firmware UFS controller — each domain of each
    /// socket — is settled for the given steady-state inputs: its current
    /// ratio already equals the target it would keep picking, so further
    /// quanta cannot change it.
    fn ufs_settled(&self, demand: &PhaseDemand, f_eff_khz: f64, gbs: f64, waiting: bool) -> bool {
        let cfg = &self.config;
        let n_sockets = self.sockets.len();
        let total_active = if waiting && !demand.wait_busy {
            0
        } else {
            demand.active_cores
        };
        let ps = self.cached_pstate_for(self.sockets[0].requested_ratio());
        let f_spin_khz = cfg.pstates.khz(ps) as f64;
        let f_active_khz = if waiting { f_spin_khz } else { f_eff_khz };
        let requested_khz = cfg.pstates.khz(ps) as f64;
        self.sockets.iter().enumerate().all(|(i, s)| {
            let active = socket_active_cores(total_active, n_sockets, i);
            let epb = s.epb();
            let nd = s.domains.len();
            let peak_dom = cfg.perf.bw_peak_bytes / nd as f64;
            s.domains.iter().enumerate().all(|(d, ufs)| {
                let gbs_dom = gbs * demand.domain_frac(d, nd);
                let mem_util = (gbs_dom * 1e9 / peak_dom).clamp(0.0, 1.0);
                let input = make_hwufs_input(
                    cfg,
                    active,
                    f_active_khz,
                    requested_khz,
                    mem_util,
                    epb,
                    demand.hw_ufs_bias,
                );
                let (min_r, max_r) = s.uncore_limits(d);
                ufs.current_ratio() == ufs.target_ratio(&input, min_r, max_r)
            })
        })
    }

    /// Advances one quantum: updates counters, energy, the firmware UFS and
    /// the clock. `waiting` selects spin/idle semantics over work semantics.
    #[allow(clippy::too_many_arguments)]
    fn advance_interval(
        &mut self,
        dt: f64,
        demand: &PhaseDemand,
        f_eff_khz: f64,
        work_frac: f64,
        gbs: f64,
        p_noise: f64,
        waiting: bool,
    ) {
        let cfg = &self.config;
        let n_sockets = self.sockets.len();
        let total_active = if waiting && !demand.wait_busy {
            0
        } else {
            demand.active_cores
        };
        let now = self.clock.now();

        // Spinning cores run scalar code at the delivered (non-AVX) ratio:
        // the OS request plus any PL1 throttle. With no limiter engaged the
        // throttle is zero and this is exactly the requested pstate.
        let ps_req = self.cached_pstate_for(self.sockets[0].requested_ratio());
        let slowest = cfg.pstates.slowest();
        let throttle = self
            .sockets
            .iter()
            .map(|s| s.rapl_throttle)
            .max()
            .unwrap_or(0) as usize;
        let ps = if throttle == 0 {
            ps_req
        } else {
            (ps_req + throttle).min(slowest)
        };
        // Deepest throttle the limiter can apply below the OS request.
        let rapl_headroom = slowest - ps_req;
        let f_spin_khz = cfg.pstates.khz(ps) as f64;
        let f_active_khz = if waiting { f_spin_khz } else { f_eff_khz };
        let requested_khz = cfg.pstates.khz(ps) as f64;

        let mut node_pkg_w = 0.0;
        for (i, s) in self.sockets.iter_mut().enumerate() {
            let active = socket_active_cores(total_active, n_sockets, i);
            let total = cfg.cores_per_socket;
            let idle = total - active.min(total);

            // --- Counters ---
            let share = 1.0 / n_sockets as f64;
            let active_share = if total_active > 0 {
                active as f64 / total_active as f64
            } else {
                0.0
            };
            if waiting {
                if demand.wait_busy && active > 0 {
                    let cycles = active as f64 * f_active_khz * 1e3 * dt;
                    s.accum.core_cycles += cycles;
                    s.accum.instructions += cycles / SPIN_CPI;
                }
            } else {
                s.accum.instructions += demand.instructions * work_frac * active_share;
                s.accum.avx512_instructions +=
                    demand.instructions * demand.avx512_fraction * work_frac * active_share;
                s.accum.core_cycles += active as f64 * f_active_khz * 1e3 * dt;
                s.accum.cas_transactions += demand.mem_transactions() * work_frac * share;
            }
            s.accum.aperf_kcycles += (active as f64 * f_active_khz
                + idle as f64 * IDLE_HOUSEKEEPING_DUTY * cfg.idle_core_khz as f64)
                * dt;
            s.accum.mperf_kcycles +=
                (active as f64 + idle as f64 * IDLE_HOUSEKEEPING_DUTY) * MPERF_SENTINEL_KHZ * dt;

            // --- Firmware UFS, per uncore domain ---
            let epb = s.epb();
            let nd = s.domains.len();
            let nd_f = nd as f64;
            let peak_dom = cfg.perf.bw_peak_bytes / nd_f;
            let mut limits = [(0u8, 0u8); msr::MAX_UNCORE_DOMAINS];
            for (d, l) in limits.iter_mut().enumerate().take(nd) {
                *l = s.uncore_limits(d);
            }
            let mut ghz_sum = 0.0;
            let mut unc_w_sum = 0.0;
            let mut mem_util0 = 0.0;
            let mut f_unc0_ghz = 0.0;
            for (d, ufs) in s.domains.iter_mut().enumerate() {
                let fr = demand.domain_frac(d, nd);
                let gbs_dom = gbs * fr;
                let mem_util = (gbs_dom * 1e9 / peak_dom).clamp(0.0, 1.0);
                let input = make_hwufs_input(
                    cfg,
                    active,
                    f_active_khz,
                    requested_khz,
                    mem_util,
                    epb,
                    demand.hw_ufs_bias,
                );
                let (min_r, max_r) = limits[d];
                let before = ufs.current_ratio();
                let ratio = ufs.advance(dt, &input, min_r, max_r);
                if ratio != before {
                    crate::stats::record_ratio_step(d);
                }
                s.msr.poke(addr::tpmi_perf_status(d), ratio as u64);
                let f_unc_ghz = ratio as f64 * 0.1;
                ghz_sum += f_unc_ghz;
                s.accum.uclk_dom_kcycles[d] += f_unc_ghz * 1e6 * dt;
                if !waiting {
                    s.accum.cas_dom_transactions[d] +=
                        demand.mem_transactions() * fr * work_frac * share;
                }
                unc_w_sum += power::uncore_domain_power(&cfg.power, nd, f_unc_ghz, mem_util);
                if d == 0 {
                    mem_util0 = mem_util;
                    f_unc0_ghz = f_unc_ghz;
                }
            }
            // Legacy single-knob counter: the per-domain mean, so existing
            // avg-IMC readings stay meaningful (and bit-identical at N=1).
            let mean_ghz = ghz_sum / nd_f;
            s.accum.uclk_kcycles += mean_ghz * 1e6 * dt;

            // --- Power ---
            let spin_or_act = if waiting {
                cfg.power.spin_activity
            } else {
                demand.activity
            };
            let pin = SocketPowerInput {
                active_cores: active,
                total_cores: total,
                f_core_ghz: f_active_khz * 1e-6,
                activity: spin_or_act,
                avx512_fraction: if waiting { 0.0 } else { demand.avx512_fraction },
                f_uncore_ghz: f_unc0_ghz,
                mem_util: mem_util0,
            };
            let pkg_w = power::pkg_power_with_uncore(&cfg.power, &pin, unc_w_sum) * p_noise;
            node_pkg_w += pkg_w;

            // --- RAPL PL1 limiter ---
            // Running average over the programmed window (exponential, time
            // constant = window), one throttle/relax step per quantum with
            // hysteresis. Entirely skipped while PL1 is disabled, so the
            // uncapped configuration computes bit-identical results.
            if s.rapl_enabled {
                let alpha = (dt / s.rapl_window_s).min(1.0);
                s.rapl_avg_w += alpha * (pkg_w - s.rapl_avg_w);
                if s.rapl_avg_w > s.rapl_limit_w {
                    if (s.rapl_throttle as usize) < rapl_headroom {
                        s.rapl_throttle += 1;
                        crate::stats::record_rapl_throttle();
                    }
                } else if s.rapl_avg_w < s.rapl_limit_w * RAPL_LIFT_FRACTION && s.rapl_throttle > 0
                {
                    s.rapl_throttle -= 1;
                }
                // Surface the delivered ratio where software reads it.
                let eff = (ps_req + s.rapl_throttle as usize).min(slowest);
                s.msr.poke(
                    addr::IA32_PERF_STATUS,
                    msr::pack_perf_ctl(cfg.pstates.ratio_for(eff)),
                );
            }

            s.accum.pkg_energy_uj += pkg_w * dt * 1e6;
            // RAPL MSR view: exact energy quantised by the unit, 32-bit wrap.
            let unit_j = s.rapl_unit_j;
            let pkg_counts = (s.accum.pkg_energy_uj * 1e-6 / unit_j) as u64 & 0xFFFF_FFFF;
            s.msr.poke(addr::MSR_PKG_ENERGY_STATUS, pkg_counts);

            let dram_w = power::dram_power(&cfg.power, gbs) * share;
            s.accum.dram_energy_uj += dram_w * dt * 1e6;
            let dram_counts = (s.accum.dram_energy_uj * 1e-6 / unit_j) as u64 & 0xFFFF_FFFF;
            s.msr.poke(addr::MSR_DRAM_ENERGY_STATUS, dram_counts);

            // Fixed-counter MSR views (48-bit architectural width).
            s.msr.poke(
                addr::IA32_FIXED_CTR0,
                s.accum.instructions as u64 & ((1 << 48) - 1),
            );
            s.msr.poke(
                addr::IA32_FIXED_CTR1,
                s.accum.core_cycles as u64 & ((1 << 48) - 1),
            );
            s.msr.poke(addr::IA32_APERF, s.accum.aperf_kcycles as u64);
            s.msr.poke(addr::IA32_MPERF, s.accum.mperf_kcycles as u64);
            s.msr
                .poke(addr::MSR_U_PMON_UCLK_FIXED_CTR, s.accum.uclk_kcycles as u64);
        }

        let gpu_w = power::gpu_power(&cfg.power, cfg.gpus, demand.gpu_power_w);
        let dram_total_w = power::dram_power(&cfg.power, gbs);
        let dc_w = node_pkg_w + dram_total_w + cfg.power.platform_w + gpu_w;
        self.inm.accumulate(now, dt, dc_w);
        self.clock.advance(dt);
    }
}

/// Active cores on socket `i` when `total_active` cores are distributed
/// round-robin-by-socket: socket 0 fills first (matches pinning of low-rank
/// processes / the single busy-wait core of the CUDA kernels).
fn socket_active_cores(total_active: usize, n_sockets: usize, i: usize) -> usize {
    let per = total_active / n_sockets;
    let rem = total_active % n_sockets;
    per + usize::from(i < rem)
}

/// Builds the firmware UFS input sampled for one socket. Shared between the
/// per-quantum advance and the settled-state check so both evaluate the
/// identical control law.
fn make_hwufs_input(
    cfg: &NodeConfig,
    active: usize,
    f_active_khz: f64,
    requested_khz: f64,
    mem_util: f64,
    epb: u8,
    bias: f64,
) -> HwUfsInput {
    HwUfsInput {
        fastest_active_khz: if active > 0 {
            f_active_khz as u64
        } else {
            // OS housekeeping wakes at the requested ratio, so an
            // idle socket follows the node-level DVFS request.
            requested_khz as u64
        },
        nominal_khz: cfg.pstates.nominal_khz(),
        mem_util,
        busy_fraction: active as f64 / cfg.cores_per_socket as f64,
        epb,
        bias,
    }
}

// Node-parallel job stepping (ear-mpisim) moves nodes across threads in
// disjoint `&mut` chunks; `Node` is plain owned data (the `Cell` pstate
// cache is `Send`, just not `Sync`), and this assertion keeps it that way.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Node>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_node() -> Node {
        let mut cfg = NodeConfig::sd530_6148();
        cfg.noise_sigma = 0.0;
        Node::new(cfg, 1)
    }

    fn cpu_bound() -> PhaseDemand {
        // Sized so one phase runs ~3.4 s at nominal: the INM DC counter
        // publishes at 1 s granularity, so power checks need multi-second
        // windows (exactly why the paper measures over >= 10 s).
        PhaseDemand {
            instructions: 8e11,
            mem_bytes: 80e9,
            cpi_core: 0.38,
            uncore_lat_cycles: 4.0,
            mem_overlap: 0.6,
            active_cores: 40,
            ..Default::default()
        }
    }

    #[test]
    fn boots_at_nominal_max_uncore() {
        let n = quiet_node();
        assert_eq!(n.requested_pstate(), 1);
        assert_eq!(n.uncore_limits(0, 0), (12, 24));
        assert_eq!(n.uncore_limits(1, 0), (12, 24));
        assert_eq!(n.uncore_domain_count(), 1);
        assert!((n.current_uncore_ghz() - 2.4).abs() < 1e-9);
    }

    fn dual_domain_node() -> Node {
        let mut cfg = NodeConfig::sd530_6148().with_uncore_domains(2);
        cfg.noise_sigma = 0.0;
        Node::new(cfg, 1)
    }

    #[test]
    fn per_domain_limits_are_independent() {
        let mut n = dual_domain_node();
        assert_eq!(n.uncore_domain_count(), 2);
        n.set_uncore_limits_dom(1, 12, 12).unwrap();
        assert_eq!(n.uncore_limits(0, 0), (12, 24));
        assert_eq!(n.uncore_limits(0, 1), (12, 12));
        // The pinned domain drops immediately; domain 0 stays at max.
        assert_eq!(n.socket(0).uncore_ratio_dom(1), 12);
        assert_eq!(n.socket(0).uncore_ratio_dom(0), 24);
        // Legacy 0x620 writes keep addressing domain 0 only.
        n.write_msr(
            0,
            addr::MSR_UNCORE_RATIO_LIMIT,
            msr::pack_uncore_ratio_limit(18, 18),
        )
        .unwrap();
        assert_eq!(n.uncore_limits(0, 0), (18, 18));
        assert_eq!(n.uncore_limits(0, 1), (12, 12));
    }

    #[test]
    fn idle_domain_down_scales_while_host_domain_stays_high() {
        let mut n = dual_domain_node();
        n.set_cpu_pstate(5); // sub-nominal: firmware UFS follows demand
                             // All memory traffic routed to domain 0 (GPU-offload host feed).
        let host_feed = PhaseDemand {
            instructions: 2e11,
            mem_bytes: 150e9,
            cpi_core: 0.8,
            active_cores: 32,
            mem_overlap: 0.7,
            domain_mem_frac: Some([1.0, 0.0, 0.0, 0.0]),
            ..Default::default()
        };
        n.run_phase(&host_feed);
        let busy = n.socket(0).uncore_ratio_dom(0);
        let idle = n.socket(0).uncore_ratio_dom(1);
        assert!(busy > idle + 4, "busy {busy} idle {idle}");
        let snap = n.snapshot();
        assert_eq!(snap.sockets[0].uncore_domains, 2);
        // Domain counters reflect the routing: uclk ticks split, CAS does not.
        assert!(snap.sockets[0].cas_dom_transactions[0] > 0);
        assert_eq!(snap.sockets[0].cas_dom_transactions[1], 0);
    }

    #[test]
    fn single_domain_node_matches_legacy_counters() {
        // The per-domain accumulators of a 1-domain node must mirror the
        // legacy scalar counters exactly.
        let mut n = quiet_node();
        n.run_phase(&cpu_bound());
        let s = &n.snapshot().sockets[0];
        assert_eq!(s.uncore_domains, 1);
        assert_eq!(s.uclk_dom_kcycles[0], s.uclk_kcycles);
        assert_eq!(s.cas_dom_transactions[0], s.cas_transactions);
    }

    #[test]
    fn phase_advances_time_and_counters() {
        let mut n = quiet_node();
        let before = n.snapshot();
        let out = n.run_phase(&cpu_bound());
        let after = n.snapshot();
        assert!(out.work_s > 0.1, "work {}", out.work_s);
        let d = after.delta(&before);
        assert!((d.instructions - 8e11).abs() / 8e11 < 1e-6);
        assert!(d.cpi() > 0.3 && d.cpi() < 1.0, "cpi {}", d.cpi());
        assert!(
            d.dc_power_w() > 250.0 && d.dc_power_w() < 420.0,
            "dc {}",
            d.dc_power_w()
        );
        assert!(d.pkg_power_w() < d.dc_power_w());
        assert!(
            (d.avg_cpu_ghz() - 2.4).abs() < 0.05,
            "cpu {}",
            d.avg_cpu_ghz()
        );
        assert!(
            (d.avg_imc_ghz() - 2.4).abs() < 0.05,
            "imc {}",
            d.avg_imc_ghz()
        );
    }

    #[test]
    fn lower_cpu_pstate_slows_and_saves_power() {
        let mut a = quiet_node();
        let mut b = quiet_node();
        b.set_cpu_pstate(7); // 1.8 GHz
        let sa0 = a.snapshot();
        let sb0 = b.snapshot();
        let oa = a.run_phase(&cpu_bound());
        let ob = b.run_phase(&cpu_bound());
        assert!(ob.work_s > oa.work_s * 1.2);
        let pa = a.snapshot().delta(&sa0).dc_power_w();
        let pb = b.snapshot().delta(&sb0).dc_power_w();
        assert!(pb < pa - 30.0, "power {pa} vs {pb}");
    }

    #[test]
    fn pinned_uncore_reduces_power_with_small_penalty_for_cpu_bound() {
        let mut a = quiet_node();
        let mut b = quiet_node();
        b.set_uncore_limits(18, 18).unwrap(); // pin 1.8 GHz
        let sa0 = a.snapshot();
        let sb0 = b.snapshot();
        let oa = a.run_phase(&cpu_bound());
        let ob = b.run_phase(&cpu_bound());
        let penalty = (ob.work_s - oa.work_s) / oa.work_s;
        assert!(penalty < 0.03, "penalty {penalty}");
        let pa = a.snapshot().delta(&sa0).dc_power_w();
        let pb = b.snapshot().delta(&sb0).dc_power_w();
        let saving = (pa - pb) / pa;
        assert!(saving > 0.04, "saving {saving}");
    }

    #[test]
    fn avx512_caps_effective_frequency() {
        let mut n = quiet_node();
        let demand = PhaseDemand {
            instructions: 2e11,
            avx512_fraction: 1.0,
            mem_bytes: 40e9,
            cpi_core: 0.45,
            active_cores: 40,
            ..Default::default()
        };
        let before = n.snapshot();
        n.run_phase(&demand);
        let d = n.snapshot().delta(&before);
        assert!(
            (d.avg_cpu_ghz() - 2.2).abs() < 0.05,
            "avg {}",
            d.avg_cpu_ghz()
        );
        assert!((d.vpi() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_wait_accumulates_spin_instructions() {
        let mut n = quiet_node();
        let demand = PhaseDemand {
            instructions: 0.0,
            mem_bytes: 0.0,
            active_cores: 1,
            wait_seconds: 1.0,
            wait_busy: true,
            ..Default::default()
        };
        let before = n.snapshot();
        let out = n.run_phase(&demand);
        assert!((out.wait_s - 1.0).abs() < 1e-9);
        let d = n.snapshot().delta(&before);
        assert!((d.cpi() - SPIN_CPI).abs() < 1e-9);
    }

    #[test]
    fn hw_ufs_follows_subnominal_dvfs() {
        let mut n = quiet_node();
        n.set_cpu_pstate(5); // 2.0 GHz < nominal
        let quiet = PhaseDemand {
            instructions: 5e10,
            mem_bytes: 1e9,
            cpi_core: 0.5,
            active_cores: 40,
            mem_overlap: 0.8,
            ..Default::default()
        };
        n.run_phase(&quiet);
        // Sub-nominal, low memory traffic: firmware drops the uncore.
        assert!(
            n.current_uncore_ghz() < 2.0,
            "uncore {}",
            n.current_uncore_ghz()
        );
    }

    #[test]
    fn rapl_msr_tracks_exact_energy() {
        let mut n = quiet_node();
        n.run_phase(&cpu_bound());
        let unit = msr::rapl_energy_unit_joules(n.read_msr(0, addr::MSR_RAPL_POWER_UNIT).unwrap());
        let msr_j = n.read_msr(0, addr::MSR_PKG_ENERGY_STATUS).unwrap() as f64 * unit;
        let exact_j = n.snapshot().sockets[0].pkg_energy_uj as f64 * 1e-6;
        assert!(
            (msr_j - exact_j).abs() < 0.01 * exact_j + 1.0,
            "{msr_j} vs {exact_j}"
        );
    }

    #[test]
    fn rapl_disabled_and_loose_limit_are_bit_identical_to_no_limit() {
        // The acceptance contract for this subsystem: a node with no PL1
        // programmed and a node with PL1 armed but never binding (a limit
        // far above peak package power) must produce bit-identical
        // trajectories — enforcement adds state, not drift. Exercised with
        // noise on and several seeds so both RNG paths are covered.
        for seed in [1u64, 7, 42] {
            let run = |limit: Option<f64>| {
                let mut n = Node::new(NodeConfig::sd530_6148(), seed);
                if let Some(w) = limit {
                    n.set_rapl_limit_w(w, 1.0).unwrap();
                }
                n.run_phase(&cpu_bound());
                n.run_idle(1.0);
                (n.now(), n.dc_energy_exact_j(), n.snapshot().sockets[0])
            };
            let (t_none, e_none, s_none) = run(None);
            let (t_loose, e_loose, s_loose) = run(Some(4000.0));
            assert_eq!(t_none, t_loose);
            assert_eq!(e_none.to_bits(), e_loose.to_bits());
            assert_eq!(s_none.pkg_energy_uj, s_loose.pkg_energy_uj);
            assert_eq!(s_none.aperf_kcycles, s_loose.aperf_kcycles);
        }
    }

    #[test]
    fn rapl_binding_limit_throttles_and_caps_window_average() {
        let events_before = crate::stats::rapl_throttle_events();
        let mut n = quiet_node();
        // Per-socket package power of the cpu-bound phase is ~119 W at
        // nominal; 110 W is a binding PL1. The limiter settles into a
        // narrow limit cycle around the cap (one pstate step moves power
        // more than the 2 % hysteresis band), so assert on the throttle
        // event counter and the window average, not the end-of-phase
        // throttle depth.
        n.set_rapl_limit_w(110.0, 0.5).unwrap();
        let d = cpu_bound();
        n.run_phase(&d);
        n.run_phase(&d);
        assert!(
            crate::stats::rapl_throttle_events() > events_before,
            "limiter never engaged"
        );
        for i in 0..n.socket_count() {
            let avg = n.socket(i).rapl_avg_power_w();
            assert!(avg <= 110.0 * 1.02, "socket {i} window avg {avg} W");
        }
        // The delivered ratio stays visible where software reads it, never
        // above the requested nominal ratio.
        let status = msr::unpack_perf_ratio(n.read_msr(0, addr::IA32_PERF_STATUS).unwrap());
        assert!(status <= n.config.pstates.ratio_for(1), "status {status}");
        assert_eq!(
            n.effective_pstate(),
            n.requested_pstate() + n.rapl_throttle_steps() as usize
        );
    }

    #[test]
    fn rapl_throttle_slows_and_saves_energy() {
        let run = |limit: Option<f64>| {
            let mut n = quiet_node();
            if let Some(w) = limit {
                n.set_rapl_limit_w(w, 0.5).unwrap();
            }
            let before = n.dc_energy_exact_j();
            let out = n.run_phase(&cpu_bound());
            (out.work_s, n.dc_energy_exact_j() - before)
        };
        let (t_free, e_free) = run(None);
        let (t_cap, _) = run(Some(100.0));
        assert!(t_cap > t_free * 1.05, "{t_cap} vs {t_free}");
        // Power drops harder than runtime grows under a deep cap.
        let p_free = e_free / t_free;
        let (t2, e2) = run(Some(100.0));
        assert!(e2 / t2 < p_free * 0.95, "{} vs {p_free}", e2 / t2);
    }

    #[test]
    fn rapl_clear_releases_the_throttle() {
        let events_before = crate::stats::rapl_throttle_events();
        let mut n = quiet_node();
        n.set_rapl_limit_w(100.0, 0.5).unwrap();
        n.run_phase(&cpu_bound());
        assert!(crate::stats::rapl_throttle_events() > events_before);
        n.clear_rapl_limit();
        assert!(!n.rapl_enabled());
        assert_eq!(n.rapl_throttle_steps(), 0);
        assert_eq!(n.effective_pstate(), n.requested_pstate());
        assert_eq!(n.socket(0).rapl_avg_power_w(), 0.0);
    }

    #[test]
    fn rapl_enforces_under_fast_forward_config() {
        // fast_forward skips quantum stepping when the UFS settles; the
        // limiter must still see every quantum, so it disables the shortcut
        // while armed.
        let mut cfg = NodeConfig::sd530_6148();
        cfg.noise_sigma = 0.0;
        cfg.fast_forward = true;
        let events_before = crate::stats::rapl_throttle_events();
        let mut n = Node::new(cfg, 1);
        n.set_rapl_limit_w(110.0, 0.5).unwrap();
        n.run_phase(&cpu_bound());
        assert!(crate::stats::rapl_throttle_events() > events_before);
        assert!(n.socket(0).rapl_avg_power_w() <= 110.0 * 1.02);
    }

    #[test]
    fn idle_advances_time_cheaply() {
        let mut n = quiet_node();
        n.run_idle(5.0);
        assert!((n.now().as_secs() - 5.0).abs() < 1e-6);
        let snap = n.snapshot();
        let idle_power = snap.dc_energy_exact_j / 5.0;
        assert!(idle_power < 260.0, "idle DC {idle_power} W");
    }

    #[test]
    fn deterministic_across_same_seed() {
        let mk = || {
            let mut n = Node::new(NodeConfig::sd530_6148(), 99);
            n.run_phase(&cpu_bound());
            (n.now(), n.dc_energy_exact_j())
        };
        let (t1, e1) = mk();
        let (t2, e2) = mk();
        assert_eq!(t1, t2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn noise_differs_across_seeds() {
        let run = |seed| {
            let mut n = Node::new(NodeConfig::sd530_6148(), seed);
            n.run_phase(&cpu_bound()).work_s
        };
        assert_ne!(run(1), run(2));
    }
}
