//! # ear-archsim — simulated Intel Skylake-SP node hardware
//!
//! This crate is the hardware substrate for the EAR explicit-UFS
//! reproduction. It models, at the fidelity the EAR runtime actually
//! observes, the platform of the paper's evaluation:
//!
//! * **MSR file** with SDM-accurate bit layouts: `MSR_UNCORE_RATIO_LIMIT`
//!   (0x620), RAPL (`0x606`/`0x611`/`0x619` with 32-bit wrap and unit
//!   decoding), `IA32_PERF_CTL`, EPB, APERF/MPERF and fixed counters.
//! * **DVFS** with the EAR pstate convention (0 = turbo, 1 = nominal) and
//!   the AVX512 licence frequency cap (2.2 GHz all-core on the Gold 6148).
//! * **Firmware UFS control loop** reacting every ~10 ms within the
//!   programmed ratio limits — the "hardware UFS" the paper compares
//!   against; pinning `min == max` through the MSR overrides it, which is
//!   exactly the mechanism EAR's explicit UFS uses.
//! * **Analytic performance model** (core / uncore-latency / DRAM-bandwidth
//!   decomposition) and **power model** (cores + uncore + DRAM + constant
//!   platform baseline + GPUs), calibrated to the paper's characterisation
//!   tables.
//! * **Intel Node Manager** DC energy counter with 1 s update granularity,
//!   and RAPL package energy — the two power scopes the paper contrasts in
//!   its Table VII.
//!
//! Execution is demand-driven: workloads present [`PhaseDemand`]s, the node
//! turns them into time, counters and energy. See the repo-level DESIGN.md
//! for the substitution argument (why a demand-driven simulator preserves
//! the behaviour the paper's policies depend on).

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod counters;
pub mod demand;
pub mod hwufs;
pub mod inm;
pub mod msr;
pub mod node;
pub mod perf;
pub mod power;
pub mod pstate;
pub mod rng;
pub mod stats;
pub mod time;

pub use cluster::{Cluster, Interconnect};
pub use config::{HwUfsParams, NodeConfig, PerfParams, PowerParams};
pub use counters::{CounterDelta, CounterSnapshot, SocketCounters};
pub use demand::PhaseDemand;
pub use msr::{MsrError, MsrFile, MAX_UNCORE_DOMAINS};
pub use node::{Node, PhaseOutcome, Socket, SPIN_CPI};
pub use pstate::{Pstate, PstateTable};
pub use rng::Xoshiro256;
pub use time::{Clock, SimTime};
