//! Model Specific Register (MSR) file.
//!
//! The simulated node exposes the same MSR interface the EAR library uses on
//! real Skylake-SP hardware, with bit layouts taken from the Intel SDM
//! (vol. 4) so that driver-level code (ratio packing, RAPL unit decoding,
//! 32-bit energy counter wrap handling) is exercised for real.

use std::fmt;

/// MSR addresses used by the simulator (Intel SDM vol. 4, Skylake-SP).
pub mod addr {
    /// `IA32_MPERF`: fixed-frequency reference cycle counter.
    pub const IA32_MPERF: u32 = 0xE7;
    /// `IA32_APERF`: actual-frequency cycle counter.
    pub const IA32_APERF: u32 = 0xE8;
    /// `IA32_PERF_STATUS`: current pstate ratio (bits 15:8).
    pub const IA32_PERF_STATUS: u32 = 0x198;
    /// `IA32_PERF_CTL`: requested pstate ratio (bits 15:8).
    pub const IA32_PERF_CTL: u32 = 0x199;
    /// `IA32_ENERGY_PERF_BIAS`: EPB hint, bits 3:0 (0 = performance,
    /// 15 = power save).
    pub const IA32_ENERGY_PERF_BIAS: u32 = 0x1B0;
    /// `IA32_FIXED_CTR0`: instructions retired.
    pub const IA32_FIXED_CTR0: u32 = 0x309;
    /// `IA32_FIXED_CTR1`: core clock cycles (unhalted).
    pub const IA32_FIXED_CTR1: u32 = 0x30A;
    /// `IA32_FIXED_CTR2`: reference clock cycles (unhalted).
    pub const IA32_FIXED_CTR2: u32 = 0x30B;
    /// `MSR_RAPL_POWER_UNIT`: power/energy/time units (energy: bits 12:8).
    pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
    /// `MSR_PKG_ENERGY_STATUS`: package energy accumulator (32-bit, wraps).
    pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
    /// `MSR_DRAM_ENERGY_STATUS`: DRAM energy accumulator (32-bit, wraps).
    pub const MSR_DRAM_ENERGY_STATUS: u32 = 0x619;
    /// `MSR_UNCORE_RATIO_LIMIT` (0x620): max ratio bits 6:0, min ratio bits
    /// 14:8, in units of 100 MHz. Writing min == max pins the uncore.
    pub const MSR_UNCORE_RATIO_LIMIT: u32 = 0x620;
    /// `MSR_UNCORE_PERF_STATUS` (0x621): current uncore ratio, bits 6:0.
    pub const MSR_UNCORE_PERF_STATUS: u32 = 0x621;
    /// U-box fixed counter control (Skylake-SP uncore).
    pub const MSR_U_PMON_UCLK_FIXED_CTL: u32 = 0x703;
    /// U-box fixed counter: uncore clock ticks.
    pub const MSR_U_PMON_UCLK_FIXED_CTR: u32 = 0x704;
}

/// Error type for MSR access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrError {
    /// The register is not implemented by this model (a real RDMSR would #GP).
    Unimplemented(u32),
    /// The register exists but is read-only (a real WRMSR would #GP).
    ReadOnly(u32),
    /// A written value violates the register's constraints.
    InvalidValue {
        /// The register address.
        msr: u32,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for MsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrError::Unimplemented(a) => write!(f, "MSR {a:#x} not implemented"),
            MsrError::ReadOnly(a) => write!(f, "MSR {a:#x} is read-only"),
            MsrError::InvalidValue { msr, value } => {
                write!(f, "invalid value {value:#x} for MSR {msr:#x}")
            }
        }
    }
}

impl std::error::Error for MsrError {}

impl From<MsrError> for ear_errors::EarError {
    fn from(e: MsrError) -> Self {
        ear_errors::EarError::Msr(e.to_string())
    }
}

/// Default RAPL energy-status unit exponent on Skylake-SP: energy counts in
/// units of 1 / 2^14 J ≈ 61 µJ.
pub const DEFAULT_ENERGY_UNIT_EXP: u64 = 14;

/// Number of registers in the model (dense storage slots).
const REG_COUNT: usize = 15;

/// Maps an MSR address to its dense storage slot. The register set is fixed
/// at the 15 MSRs the EAR runtime touches, so a match (a jump table after
/// codegen) replaces the former `HashMap` — the register file sits on the
/// per-quantum hot path of `Node::advance_interval`, where hashing each
/// address cost more than the modelled work.
const fn slot(msr: u32) -> Option<usize> {
    match msr {
        addr::IA32_MPERF => Some(0),
        addr::IA32_APERF => Some(1),
        addr::IA32_PERF_STATUS => Some(2),
        addr::IA32_PERF_CTL => Some(3),
        addr::IA32_ENERGY_PERF_BIAS => Some(4),
        addr::IA32_FIXED_CTR0 => Some(5),
        addr::IA32_FIXED_CTR1 => Some(6),
        addr::IA32_FIXED_CTR2 => Some(7),
        addr::MSR_RAPL_POWER_UNIT => Some(8),
        addr::MSR_PKG_ENERGY_STATUS => Some(9),
        addr::MSR_DRAM_ENERGY_STATUS => Some(10),
        addr::MSR_UNCORE_RATIO_LIMIT => Some(11),
        addr::MSR_UNCORE_PERF_STATUS => Some(12),
        addr::MSR_U_PMON_UCLK_FIXED_CTL => Some(13),
        addr::MSR_U_PMON_UCLK_FIXED_CTR => Some(14),
        _ => None,
    }
}

/// Per-socket MSR register file.
///
/// Read-only status registers are updated by the simulator through
/// [`MsrFile::poke`]; software (EARL) uses [`MsrFile::read`] /
/// [`MsrFile::write`], which enforce the same access rules as the hardware.
#[derive(Debug, Clone)]
pub struct MsrFile {
    regs: [u64; REG_COUNT],
}

impl MsrFile {
    /// Creates a register file with Skylake-SP reset values, given the
    /// platform's uncore ratio range (in 100 MHz units).
    pub fn new(uncore_min_ratio: u8, uncore_max_ratio: u8) -> Self {
        let mut m = Self {
            regs: [0; REG_COUNT],
        };
        // EPB resets to 6 ("balanced") on most shipped firmware.
        m.poke(addr::IA32_ENERGY_PERF_BIAS, 6);
        // Energy status unit in bits 12:8; power unit (bits 3:0) and time
        // unit (bits 19:16) carry typical values but are unused here.
        m.poke(
            addr::MSR_RAPL_POWER_UNIT,
            (DEFAULT_ENERGY_UNIT_EXP << 8) | 0x3 | (0xA << 16),
        );
        m.poke(
            addr::MSR_UNCORE_RATIO_LIMIT,
            pack_uncore_ratio_limit(uncore_min_ratio, uncore_max_ratio),
        );
        m.poke(addr::MSR_UNCORE_PERF_STATUS, uncore_max_ratio as u64);
        m
    }

    /// RDMSR. Errors on unimplemented registers like real hardware (#GP).
    pub fn read(&self, msr: u32) -> Result<u64, MsrError> {
        slot(msr)
            .map(|s| self.regs[s])
            .ok_or(MsrError::Unimplemented(msr))
    }

    /// WRMSR with the access rules software sees: status registers are
    /// read-only, the uncore ratio limit is validated.
    pub fn write(&mut self, msr: u32, value: u64) -> Result<(), MsrError> {
        match msr {
            addr::IA32_PERF_STATUS
            | addr::MSR_PKG_ENERGY_STATUS
            | addr::MSR_DRAM_ENERGY_STATUS
            | addr::MSR_RAPL_POWER_UNIT
            | addr::MSR_UNCORE_PERF_STATUS => return Err(MsrError::ReadOnly(msr)),
            addr::MSR_UNCORE_RATIO_LIMIT => {
                let (min, max) = unpack_uncore_ratio_limit(value);
                if min > max || max == 0 {
                    return Err(MsrError::InvalidValue { msr, value });
                }
            }
            addr::IA32_ENERGY_PERF_BIAS if value > 0xF => {
                return Err(MsrError::InvalidValue { msr, value });
            }
            _ => {}
        }
        match slot(msr) {
            Some(s) => {
                self.regs[s] = value;
                Ok(())
            }
            None => Err(MsrError::Unimplemented(msr)),
        }
    }

    /// Simulator-side read of a register, bypassing software access rules
    /// (this is "the hardware" sampling its own wires, which cannot #GP).
    /// Unmodelled addresses read as zero.
    pub fn peek(&self, msr: u32) -> u64 {
        slot(msr).map_or(0, |s| self.regs[s])
    }

    /// Simulator-side update of a register, bypassing software access rules
    /// (this is "the hardware" mutating its own status registers). Panics
    /// on addresses outside the modelled set: hardware has no such wire.
    pub fn poke(&mut self, msr: u32, value: u64) {
        match slot(msr) {
            Some(s) => self.regs[s] = value,
            None => panic!("poke of unimplemented MSR {msr:#x}"),
        }
    }

    /// Simulator-side accumulate-with-wrap for a counter register. The RAPL
    /// energy counters are 32 bits wide; the fixed counters are modelled at
    /// their architectural 48-bit width.
    pub fn accumulate(&mut self, msr: u32, delta: u64, width_bits: u32) {
        let mask = if width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << width_bits) - 1
        };
        let cur = self.read(msr).unwrap_or(0);
        self.poke(msr, cur.wrapping_add(delta) & mask);
    }
}

/// Packs (min, max) 100 MHz ratios into the `MSR_UNCORE_RATIO_LIMIT` layout.
pub fn pack_uncore_ratio_limit(min_ratio: u8, max_ratio: u8) -> u64 {
    ((min_ratio as u64 & 0x7F) << 8) | (max_ratio as u64 & 0x7F)
}

/// Unpacks `MSR_UNCORE_RATIO_LIMIT` into (min, max) 100 MHz ratios.
pub fn unpack_uncore_ratio_limit(value: u64) -> (u8, u8) {
    let max = (value & 0x7F) as u8;
    let min = ((value >> 8) & 0x7F) as u8;
    (min, max)
}

/// Packs a CPU frequency ratio (100 MHz units) into `IA32_PERF_CTL`
/// (bits 15:8).
pub fn pack_perf_ctl(ratio: u8) -> u64 {
    (ratio as u64) << 8
}

/// Extracts the CPU frequency ratio from `IA32_PERF_CTL`/`IA32_PERF_STATUS`.
pub fn unpack_perf_ratio(value: u64) -> u8 {
    ((value >> 8) & 0xFF) as u8
}

/// Decodes the RAPL energy unit (joules per count) from
/// `MSR_RAPL_POWER_UNIT`.
pub fn rapl_energy_unit_joules(power_unit_msr: u64) -> f64 {
    let exp = (power_unit_msr >> 8) & 0x1F;
    1.0 / (1u64 << exp) as f64
}

/// Computes the wrap-safe delta between two reads of a 32-bit RAPL energy
/// counter.
pub fn rapl_counter_delta(before: u64, after: u64) -> u64 {
    const WIDTH: u64 = 1 << 32;
    let b = before & (WIDTH - 1);
    let a = after & (WIDTH - 1);
    if a >= b {
        a - b
    } else {
        a + WIDTH - b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncore_ratio_limit_roundtrip() {
        let v = pack_uncore_ratio_limit(12, 24);
        assert_eq!(v, (12 << 8) | 24);
        assert_eq!(unpack_uncore_ratio_limit(v), (12, 24));
    }

    #[test]
    fn reset_values_match_skylake() {
        let m = MsrFile::new(12, 24);
        let (min, max) = unpack_uncore_ratio_limit(m.read(addr::MSR_UNCORE_RATIO_LIMIT).unwrap());
        assert_eq!((min, max), (12, 24));
        let unit = rapl_energy_unit_joules(m.read(addr::MSR_RAPL_POWER_UNIT).unwrap());
        assert!((unit - 1.0 / 16384.0).abs() < 1e-12);
        assert_eq!(m.read(addr::IA32_ENERGY_PERF_BIAS).unwrap(), 6);
    }

    #[test]
    fn status_registers_are_read_only() {
        let mut m = MsrFile::new(12, 24);
        assert_eq!(
            m.write(addr::MSR_PKG_ENERGY_STATUS, 1),
            Err(MsrError::ReadOnly(addr::MSR_PKG_ENERGY_STATUS))
        );
        assert_eq!(
            m.write(addr::IA32_PERF_STATUS, 1),
            Err(MsrError::ReadOnly(addr::IA32_PERF_STATUS))
        );
    }

    #[test]
    fn invalid_uncore_limit_rejected() {
        let mut m = MsrFile::new(12, 24);
        // min > max is invalid.
        let bad = pack_uncore_ratio_limit(20, 15);
        assert!(matches!(
            m.write(addr::MSR_UNCORE_RATIO_LIMIT, bad),
            Err(MsrError::InvalidValue { .. })
        ));
        // Pinning min == max is explicitly allowed (paper §IV).
        let pinned = pack_uncore_ratio_limit(18, 18);
        assert!(m.write(addr::MSR_UNCORE_RATIO_LIMIT, pinned).is_ok());
    }

    #[test]
    fn epb_range_checked() {
        let mut m = MsrFile::new(12, 24);
        assert!(m.write(addr::IA32_ENERGY_PERF_BIAS, 15).is_ok());
        assert!(m.write(addr::IA32_ENERGY_PERF_BIAS, 16).is_err());
    }

    #[test]
    fn unimplemented_msr_faults() {
        let m = MsrFile::new(12, 24);
        assert_eq!(m.read(0xDEAD), Err(MsrError::Unimplemented(0xDEAD)));
    }

    #[test]
    fn accumulate_wraps_at_width() {
        let mut m = MsrFile::new(12, 24);
        m.poke(addr::MSR_PKG_ENERGY_STATUS, (1u64 << 32) - 10);
        m.accumulate(addr::MSR_PKG_ENERGY_STATUS, 25, 32);
        assert_eq!(m.read(addr::MSR_PKG_ENERGY_STATUS).unwrap(), 15);
    }

    #[test]
    fn rapl_delta_handles_wrap() {
        assert_eq!(rapl_counter_delta(100, 250), 150);
        assert_eq!(rapl_counter_delta((1 << 32) - 5, 10), 15);
    }

    #[test]
    fn perf_ctl_ratio_roundtrip() {
        assert_eq!(unpack_perf_ratio(pack_perf_ctl(24)), 24);
        assert_eq!(unpack_perf_ratio(pack_perf_ctl(10)), 10);
    }
}
