//! Model Specific Register (MSR) file.
//!
//! The simulated node exposes the same MSR interface the EAR library uses on
//! real Skylake-SP hardware, with bit layouts taken from the Intel SDM
//! (vol. 4) so that driver-level code (ratio packing, RAPL unit decoding,
//! 32-bit energy counter wrap handling) is exercised for real.

use std::fmt;

/// MSR addresses used by the simulator (Intel SDM vol. 4, Skylake-SP).
pub mod addr {
    /// `IA32_MPERF`: fixed-frequency reference cycle counter.
    pub const IA32_MPERF: u32 = 0xE7;
    /// `IA32_APERF`: actual-frequency cycle counter.
    pub const IA32_APERF: u32 = 0xE8;
    /// `IA32_PERF_STATUS`: current pstate ratio (bits 15:8).
    pub const IA32_PERF_STATUS: u32 = 0x198;
    /// `IA32_PERF_CTL`: requested pstate ratio (bits 15:8).
    pub const IA32_PERF_CTL: u32 = 0x199;
    /// `IA32_ENERGY_PERF_BIAS`: EPB hint, bits 3:0 (0 = performance,
    /// 15 = power save).
    pub const IA32_ENERGY_PERF_BIAS: u32 = 0x1B0;
    /// `IA32_FIXED_CTR0`: instructions retired.
    pub const IA32_FIXED_CTR0: u32 = 0x309;
    /// `IA32_FIXED_CTR1`: core clock cycles (unhalted).
    pub const IA32_FIXED_CTR1: u32 = 0x30A;
    /// `IA32_FIXED_CTR2`: reference clock cycles (unhalted).
    pub const IA32_FIXED_CTR2: u32 = 0x30B;
    /// `MSR_RAPL_POWER_UNIT`: power/energy/time units (energy: bits 12:8).
    pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
    /// `MSR_PKG_POWER_LIMIT`: package RAPL PL1. Bits 14:0 power limit in
    /// power units, bit 15 enable, bit 16 clamp, bits 23:17 time window
    /// (`2^Y · (1 + Z/4) · time_unit`, Y = bits 21:17, Z = bits 23:22).
    /// Only the PL1 half (lower 32 bits) is modelled; resets to 0
    /// (disabled), so an untouched node never throttles.
    pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
    /// `MSR_PKG_ENERGY_STATUS`: package energy accumulator (32-bit, wraps).
    pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
    /// `MSR_DRAM_ENERGY_STATUS`: DRAM energy accumulator (32-bit, wraps).
    pub const MSR_DRAM_ENERGY_STATUS: u32 = 0x619;
    /// `MSR_UNCORE_RATIO_LIMIT` (0x620): max ratio bits 6:0, min ratio bits
    /// 14:8, in units of 100 MHz. Writing min == max pins the uncore.
    /// On multi-die parts this legacy register aliases uncore domain 0 of
    /// the TPMI block (see [`tpmi_ratio_limit`]).
    pub const MSR_UNCORE_RATIO_LIMIT: u32 = 0x620;
    /// `MSR_UNCORE_PERF_STATUS` (0x621): current uncore ratio, bits 6:0.
    /// Aliases uncore domain 0 of the TPMI block ([`tpmi_perf_status`]).
    pub const MSR_UNCORE_PERF_STATUS: u32 = 0x621;
    /// U-box fixed counter control (Skylake-SP uncore).
    pub const MSR_U_PMON_UCLK_FIXED_CTL: u32 = 0x703;
    /// U-box fixed counter: uncore clock ticks.
    pub const MSR_U_PMON_UCLK_FIXED_CTR: u32 = 0x704;

    /// Base of the TPMI-style per-die uncore frequency block (Granite
    /// Rapids exposes per-domain ratio control through TPMI rather than a
    /// single package MSR; the simulator models the same shape as a block
    /// of per-domain register pairs). Domain `d` owns two registers:
    /// `TPMI_UFS_BASE + 2d` (ratio limit, 0x620 layout) and
    /// `TPMI_UFS_BASE + 2d + 1` (perf status, 0x621 layout). Domain 0 is
    /// an alias of the legacy 0x620/0x621 pair — both addresses decode to
    /// the same storage, so single-knob software and per-domain software
    /// observe each other's writes exactly as on hardware.
    pub const TPMI_UFS_BASE: u32 = 0x2000;

    /// TPMI ratio-limit register of uncore domain `d`.
    pub const fn tpmi_ratio_limit(domain: usize) -> u32 {
        TPMI_UFS_BASE + 2 * domain as u32
    }

    /// TPMI perf-status register of uncore domain `d`.
    pub const fn tpmi_perf_status(domain: usize) -> u32 {
        TPMI_UFS_BASE + 2 * domain as u32 + 1
    }
}

/// Most per-socket uncore frequency domains the model supports. Real parts
/// expose one (Skylake-SP package knob) to a handful (Granite Rapids
/// compute dies); four bounds the inline per-domain counter arrays.
pub const MAX_UNCORE_DOMAINS: usize = 4;

/// If `msr` is a ratio-limit register (legacy 0x620 or a TPMI domain
/// register), the uncore domain it controls.
pub const fn uncore_domain_of_ratio_limit(msr: u32) -> Option<usize> {
    if msr == addr::MSR_UNCORE_RATIO_LIMIT {
        return Some(0);
    }
    let span = 2 * MAX_UNCORE_DOMAINS as u32;
    if msr >= addr::TPMI_UFS_BASE && msr < addr::TPMI_UFS_BASE + span {
        let off = msr - addr::TPMI_UFS_BASE;
        if off.is_multiple_of(2) {
            return Some((off / 2) as usize);
        }
    }
    None
}

/// If `msr` is an uncore perf-status register (legacy 0x621 or a TPMI
/// domain register), the domain it reports.
pub const fn uncore_domain_of_perf_status(msr: u32) -> Option<usize> {
    if msr == addr::MSR_UNCORE_PERF_STATUS {
        return Some(0);
    }
    let span = 2 * MAX_UNCORE_DOMAINS as u32;
    if msr >= addr::TPMI_UFS_BASE && msr < addr::TPMI_UFS_BASE + span {
        let off = msr - addr::TPMI_UFS_BASE;
        if off % 2 == 1 {
            return Some((off / 2) as usize);
        }
    }
    None
}

/// Error type for MSR access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrError {
    /// The register is not implemented by this model (a real RDMSR would #GP).
    Unimplemented(u32),
    /// The register exists but is read-only (a real WRMSR would #GP).
    ReadOnly(u32),
    /// A written value violates the register's constraints.
    InvalidValue {
        /// The register address.
        msr: u32,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for MsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrError::Unimplemented(a) => write!(f, "MSR {a:#x} not implemented"),
            MsrError::ReadOnly(a) => write!(f, "MSR {a:#x} is read-only"),
            MsrError::InvalidValue { msr, value } => {
                write!(f, "invalid value {value:#x} for MSR {msr:#x}")
            }
        }
    }
}

impl std::error::Error for MsrError {}

impl From<MsrError> for ear_errors::EarError {
    fn from(e: MsrError) -> Self {
        ear_errors::EarError::Msr(e.to_string())
    }
}

/// Default RAPL energy-status unit exponent on Skylake-SP: energy counts in
/// units of 1 / 2^14 J ≈ 61 µJ.
pub const DEFAULT_ENERGY_UNIT_EXP: u64 = 14;

/// Number of registers in the model (dense storage slots): the 16 MSRs the
/// EAR runtime touches plus one ratio-limit/perf-status pair for each TPMI
/// uncore domain beyond domain 0 (domain 0 shares the legacy 0x620/0x621
/// slots).
const REG_COUNT: usize = 16 + 2 * (MAX_UNCORE_DOMAINS - 1);

/// Maps an MSR address to its dense storage slot. The register set is fixed
/// (a match compiles to a jump table plus one range test), replacing the
/// former `HashMap` — the register file sits on the per-quantum hot path of
/// `Node::advance_interval`, where hashing each address cost more than the
/// modelled work. TPMI domain-0 registers decode to the SAME slots as the
/// legacy 0x620/0x621 pair, which is what makes the alias exact: there is
/// only one storage cell, not a mirrored copy.
const fn slot(msr: u32) -> Option<usize> {
    match msr {
        addr::IA32_MPERF => Some(0),
        addr::IA32_APERF => Some(1),
        addr::IA32_PERF_STATUS => Some(2),
        addr::IA32_PERF_CTL => Some(3),
        addr::IA32_ENERGY_PERF_BIAS => Some(4),
        addr::IA32_FIXED_CTR0 => Some(5),
        addr::IA32_FIXED_CTR1 => Some(6),
        addr::IA32_FIXED_CTR2 => Some(7),
        addr::MSR_RAPL_POWER_UNIT => Some(8),
        addr::MSR_PKG_ENERGY_STATUS => Some(9),
        addr::MSR_DRAM_ENERGY_STATUS => Some(10),
        addr::MSR_UNCORE_RATIO_LIMIT => Some(11),
        addr::MSR_UNCORE_PERF_STATUS => Some(12),
        addr::MSR_U_PMON_UCLK_FIXED_CTL => Some(13),
        addr::MSR_U_PMON_UCLK_FIXED_CTR => Some(14),
        // Appended after the original 15 so the TPMI block keeps its slots.
        addr::MSR_PKG_POWER_LIMIT => Some(15 + 2 * (MAX_UNCORE_DOMAINS - 1)),
        _ => {
            let span = 2 * MAX_UNCORE_DOMAINS as u32;
            if msr >= addr::TPMI_UFS_BASE && msr < addr::TPMI_UFS_BASE + span {
                let off = (msr - addr::TPMI_UFS_BASE) as usize;
                if off < 2 {
                    // Domain 0: alias of MSR_UNCORE_RATIO_LIMIT / _PERF_STATUS.
                    Some(11 + off)
                } else {
                    Some(15 + (off - 2))
                }
            } else {
                None
            }
        }
    }
}

/// Per-socket MSR register file.
///
/// Read-only status registers are updated by the simulator through
/// [`MsrFile::poke`]; software (EARL) uses [`MsrFile::read`] /
/// [`MsrFile::write`], which enforce the same access rules as the hardware.
#[derive(Debug, Clone)]
pub struct MsrFile {
    regs: [u64; REG_COUNT],
    /// Instantiated uncore domains. TPMI registers of domains at or beyond
    /// this count are absent, exactly as undiscovered TPMI features #GP on
    /// hardware. Always at least 1.
    domains: u8,
}

impl MsrFile {
    /// Creates a single-uncore-domain register file with Skylake-SP reset
    /// values, given the platform's uncore ratio range (in 100 MHz units).
    pub fn new(uncore_min_ratio: u8, uncore_max_ratio: u8) -> Self {
        Self::with_domains(uncore_min_ratio, uncore_max_ratio, 1)
    }

    /// Creates a register file exposing `domains` TPMI uncore domains, each
    /// reset to the same ratio range. `domains` is clamped to
    /// `1..=MAX_UNCORE_DOMAINS`.
    pub fn with_domains(uncore_min_ratio: u8, uncore_max_ratio: u8, domains: usize) -> Self {
        let domains = domains.clamp(1, MAX_UNCORE_DOMAINS);
        let mut m = Self {
            regs: [0; REG_COUNT],
            domains: domains as u8,
        };
        // EPB resets to 6 ("balanced") on most shipped firmware.
        m.poke(addr::IA32_ENERGY_PERF_BIAS, 6);
        // Energy status unit in bits 12:8; power unit (bits 3:0) and time
        // unit (bits 19:16) carry typical values but are unused here.
        m.poke(
            addr::MSR_RAPL_POWER_UNIT,
            (DEFAULT_ENERGY_UNIT_EXP << 8) | 0x3 | (0xA << 16),
        );
        for d in 0..domains {
            // Domain 0 lands in the legacy 0x620/0x621 slots via the alias.
            m.poke(
                addr::tpmi_ratio_limit(d),
                pack_uncore_ratio_limit(uncore_min_ratio, uncore_max_ratio),
            );
            m.poke(addr::tpmi_perf_status(d), uncore_max_ratio as u64);
        }
        m
    }

    /// Number of TPMI uncore domains this register file exposes.
    pub fn uncore_domains(&self) -> usize {
        self.domains as usize
    }

    /// True when `msr` is a TPMI uncore register of a domain this part does
    /// not instantiate (such accesses #GP like any unimplemented MSR).
    fn tpmi_absent(&self, msr: u32) -> bool {
        let span = 2 * MAX_UNCORE_DOMAINS as u32;
        msr >= addr::TPMI_UFS_BASE
            && msr < addr::TPMI_UFS_BASE + span
            && ((msr - addr::TPMI_UFS_BASE) / 2) as usize >= self.domains as usize
    }

    /// RDMSR. Errors on unimplemented registers like real hardware (#GP).
    pub fn read(&self, msr: u32) -> Result<u64, MsrError> {
        if self.tpmi_absent(msr) {
            return Err(MsrError::Unimplemented(msr));
        }
        slot(msr)
            .map(|s| self.regs[s])
            .ok_or(MsrError::Unimplemented(msr))
    }

    /// WRMSR with the access rules software sees: status registers are
    /// read-only, ratio-limit registers (legacy and per-domain TPMI) are
    /// validated.
    pub fn write(&mut self, msr: u32, value: u64) -> Result<(), MsrError> {
        if self.tpmi_absent(msr) {
            return Err(MsrError::Unimplemented(msr));
        }
        match msr {
            addr::IA32_PERF_STATUS
            | addr::MSR_PKG_ENERGY_STATUS
            | addr::MSR_DRAM_ENERGY_STATUS
            | addr::MSR_RAPL_POWER_UNIT => return Err(MsrError::ReadOnly(msr)),
            addr::IA32_ENERGY_PERF_BIAS if value > 0xF => {
                return Err(MsrError::InvalidValue { msr, value });
            }
            // Enabling PL1 with a zero limit field would command 0 W —
            // firmware rejects the write rather than halting the package.
            addr::MSR_PKG_POWER_LIMIT
                if value & PKG_POWER_LIMIT_ENABLE != 0 && value & 0x7FFF == 0 =>
            {
                return Err(MsrError::InvalidValue { msr, value });
            }
            _ => {
                if uncore_domain_of_perf_status(msr).is_some() {
                    return Err(MsrError::ReadOnly(msr));
                }
                if uncore_domain_of_ratio_limit(msr).is_some() {
                    let (min, max) = unpack_uncore_ratio_limit(value);
                    if min > max || max == 0 {
                        return Err(MsrError::InvalidValue { msr, value });
                    }
                }
            }
        }
        match slot(msr) {
            Some(s) => {
                self.regs[s] = value;
                Ok(())
            }
            None => Err(MsrError::Unimplemented(msr)),
        }
    }

    /// Simulator-side read of a register, bypassing software access rules
    /// (this is "the hardware" sampling its own wires, which cannot #GP).
    /// Unmodelled addresses read as zero.
    pub fn peek(&self, msr: u32) -> u64 {
        slot(msr).map_or(0, |s| self.regs[s])
    }

    /// Simulator-side update of a register, bypassing software access rules
    /// (this is "the hardware" mutating its own status registers). Panics
    /// on addresses outside the modelled set: hardware has no such wire.
    pub fn poke(&mut self, msr: u32, value: u64) {
        match slot(msr) {
            Some(s) => self.regs[s] = value,
            None => panic!("poke of unimplemented MSR {msr:#x}"),
        }
    }

    /// Simulator-side accumulate-with-wrap for a counter register. The RAPL
    /// energy counters are 32 bits wide; the fixed counters are modelled at
    /// their architectural 48-bit width.
    pub fn accumulate(&mut self, msr: u32, delta: u64, width_bits: u32) {
        let mask = if width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << width_bits) - 1
        };
        let cur = self.read(msr).unwrap_or(0);
        self.poke(msr, cur.wrapping_add(delta) & mask);
    }
}

/// Packs (min, max) 100 MHz ratios into the `MSR_UNCORE_RATIO_LIMIT` layout.
pub fn pack_uncore_ratio_limit(min_ratio: u8, max_ratio: u8) -> u64 {
    ((min_ratio as u64 & 0x7F) << 8) | (max_ratio as u64 & 0x7F)
}

/// Unpacks `MSR_UNCORE_RATIO_LIMIT` into (min, max) 100 MHz ratios.
pub fn unpack_uncore_ratio_limit(value: u64) -> (u8, u8) {
    let max = (value & 0x7F) as u8;
    let min = ((value >> 8) & 0x7F) as u8;
    (min, max)
}

/// Packs a CPU frequency ratio (100 MHz units) into `IA32_PERF_CTL`
/// (bits 15:8).
pub fn pack_perf_ctl(ratio: u8) -> u64 {
    (ratio as u64) << 8
}

/// Extracts the CPU frequency ratio from `IA32_PERF_CTL`/`IA32_PERF_STATUS`.
pub fn unpack_perf_ratio(value: u64) -> u8 {
    ((value >> 8) & 0xFF) as u8
}

/// Decodes the RAPL energy unit (joules per count) from
/// `MSR_RAPL_POWER_UNIT`.
pub fn rapl_energy_unit_joules(power_unit_msr: u64) -> f64 {
    let exp = (power_unit_msr >> 8) & 0x1F;
    1.0 / (1u64 << exp) as f64
}

/// Decodes the RAPL power unit (watts per count, bits 3:0) from
/// `MSR_RAPL_POWER_UNIT`. The Skylake reset value 0x3 gives 1/8 W.
pub fn rapl_power_unit_watts(power_unit_msr: u64) -> f64 {
    1.0 / (1u64 << (power_unit_msr & 0xF)) as f64
}

/// Decodes the RAPL time unit (seconds per count, bits 19:16) from
/// `MSR_RAPL_POWER_UNIT`. The Skylake reset value 0xA gives 1/1024 s.
pub fn rapl_time_unit_seconds(power_unit_msr: u64) -> f64 {
    1.0 / (1u64 << ((power_unit_msr >> 16) & 0xF)) as f64
}

/// PL1 enable bit in `MSR_PKG_POWER_LIMIT`.
pub const PKG_POWER_LIMIT_ENABLE: u64 = 1 << 15;

/// PL1 clamp bit in `MSR_PKG_POWER_LIMIT` (allow the limiter to go below
/// the OS-requested pstate — the simulator always clamps, but the bit is
/// kept in the encoding so software sees the SDM layout).
pub const PKG_POWER_LIMIT_CLAMP: u64 = 1 << 16;

/// Encodes a PL1 power limit (W) and averaging window (s) into the
/// `MSR_PKG_POWER_LIMIT` layout, with enable + clamp set. The limit is
/// rounded to the nearest power-unit count (floor 1 count); the window to
/// the nearest representable `2^Y · (1 + Z/4) · time_unit` value, scanning
/// (Y, Z) in a fixed order so the encoding is deterministic.
pub fn pack_pkg_power_limit(limit_w: f64, window_s: f64, power_unit_msr: u64) -> u64 {
    let pu = rapl_power_unit_watts(power_unit_msr);
    let counts = ((limit_w / pu).round() as u64).clamp(1, 0x7FFF);
    let tu = rapl_time_unit_seconds(power_unit_msr);
    let mut best = (0u64, 0u64);
    let mut best_err = f64::INFINITY;
    for y in 0..32u64 {
        for z in 0..4u64 {
            let w = (1u64 << y) as f64 * (1.0 + z as f64 / 4.0) * tu;
            let err = (w - window_s).abs();
            if err < best_err {
                best_err = err;
                best = (y, z);
            }
        }
    }
    counts | PKG_POWER_LIMIT_ENABLE | PKG_POWER_LIMIT_CLAMP | (best.0 << 17) | (best.1 << 22)
}

/// Decodes `MSR_PKG_POWER_LIMIT` into (limit watts, window seconds,
/// enabled) using the units programmed in `MSR_RAPL_POWER_UNIT`.
pub fn unpack_pkg_power_limit(value: u64, power_unit_msr: u64) -> (f64, f64, bool) {
    let limit_w = (value & 0x7FFF) as f64 * rapl_power_unit_watts(power_unit_msr);
    let y = (value >> 17) & 0x1F;
    let z = (value >> 22) & 0x3;
    let window_s =
        (1u64 << y) as f64 * (1.0 + z as f64 / 4.0) * rapl_time_unit_seconds(power_unit_msr);
    (limit_w, window_s, value & PKG_POWER_LIMIT_ENABLE != 0)
}

/// Computes the wrap-safe delta between two reads of a 32-bit RAPL energy
/// counter.
pub fn rapl_counter_delta(before: u64, after: u64) -> u64 {
    const WIDTH: u64 = 1 << 32;
    let b = before & (WIDTH - 1);
    let a = after & (WIDTH - 1);
    if a >= b {
        a - b
    } else {
        a + WIDTH - b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncore_ratio_limit_roundtrip() {
        let v = pack_uncore_ratio_limit(12, 24);
        assert_eq!(v, (12 << 8) | 24);
        assert_eq!(unpack_uncore_ratio_limit(v), (12, 24));
    }

    #[test]
    fn reset_values_match_skylake() {
        let m = MsrFile::new(12, 24);
        let (min, max) = unpack_uncore_ratio_limit(m.read(addr::MSR_UNCORE_RATIO_LIMIT).unwrap());
        assert_eq!((min, max), (12, 24));
        let unit = rapl_energy_unit_joules(m.read(addr::MSR_RAPL_POWER_UNIT).unwrap());
        assert!((unit - 1.0 / 16384.0).abs() < 1e-12);
        assert_eq!(m.read(addr::IA32_ENERGY_PERF_BIAS).unwrap(), 6);
    }

    #[test]
    fn status_registers_are_read_only() {
        let mut m = MsrFile::new(12, 24);
        assert_eq!(
            m.write(addr::MSR_PKG_ENERGY_STATUS, 1),
            Err(MsrError::ReadOnly(addr::MSR_PKG_ENERGY_STATUS))
        );
        assert_eq!(
            m.write(addr::IA32_PERF_STATUS, 1),
            Err(MsrError::ReadOnly(addr::IA32_PERF_STATUS))
        );
    }

    #[test]
    fn invalid_uncore_limit_rejected() {
        let mut m = MsrFile::new(12, 24);
        // min > max is invalid.
        let bad = pack_uncore_ratio_limit(20, 15);
        assert!(matches!(
            m.write(addr::MSR_UNCORE_RATIO_LIMIT, bad),
            Err(MsrError::InvalidValue { .. })
        ));
        // Pinning min == max is explicitly allowed (paper §IV).
        let pinned = pack_uncore_ratio_limit(18, 18);
        assert!(m.write(addr::MSR_UNCORE_RATIO_LIMIT, pinned).is_ok());
    }

    #[test]
    fn epb_range_checked() {
        let mut m = MsrFile::new(12, 24);
        assert!(m.write(addr::IA32_ENERGY_PERF_BIAS, 15).is_ok());
        assert!(m.write(addr::IA32_ENERGY_PERF_BIAS, 16).is_err());
    }

    #[test]
    fn unimplemented_msr_faults() {
        let m = MsrFile::new(12, 24);
        assert_eq!(m.read(0xDEAD), Err(MsrError::Unimplemented(0xDEAD)));
    }

    #[test]
    fn accumulate_wraps_at_width() {
        let mut m = MsrFile::new(12, 24);
        m.poke(addr::MSR_PKG_ENERGY_STATUS, (1u64 << 32) - 10);
        m.accumulate(addr::MSR_PKG_ENERGY_STATUS, 25, 32);
        assert_eq!(m.read(addr::MSR_PKG_ENERGY_STATUS).unwrap(), 15);
    }

    #[test]
    fn rapl_delta_handles_wrap() {
        assert_eq!(rapl_counter_delta(100, 250), 150);
        assert_eq!(rapl_counter_delta((1 << 32) - 5, 10), 15);
    }

    #[test]
    fn pkg_power_limit_resets_disabled_and_roundtrips() {
        let mut m = MsrFile::new(12, 24);
        let unit = m.read(addr::MSR_RAPL_POWER_UNIT).unwrap();
        // Reset state: disabled, so an untouched node never throttles.
        let (_, _, enabled) =
            unpack_pkg_power_limit(m.read(addr::MSR_PKG_POWER_LIMIT).unwrap(), unit);
        assert!(!enabled);
        // 140 W over a 1 s window round-trips exactly: 140/0.125 = 1120
        // counts, 1 s = 2^10 time units (Y=10, Z=0).
        let v = pack_pkg_power_limit(140.0, 1.0, unit);
        m.write(addr::MSR_PKG_POWER_LIMIT, v).unwrap();
        let (w, s, en) = unpack_pkg_power_limit(m.read(addr::MSR_PKG_POWER_LIMIT).unwrap(), unit);
        assert!((w - 140.0).abs() < 1e-9, "{w}");
        assert!((s - 1.0).abs() < 1e-9, "{s}");
        assert!(en);
        // Fractional windows hit the 1+Z/4 mantissa: 2.5 s = 2^1 · 1.25.
        let (_, s, _) = unpack_pkg_power_limit(pack_pkg_power_limit(100.0, 2.5, unit), unit);
        assert!((s - 2.5).abs() < 1e-9, "{s}");
    }

    #[test]
    fn pkg_power_limit_enable_with_zero_limit_rejected() {
        let mut m = MsrFile::new(12, 24);
        assert!(matches!(
            m.write(addr::MSR_PKG_POWER_LIMIT, PKG_POWER_LIMIT_ENABLE),
            Err(MsrError::InvalidValue { .. })
        ));
        // Disabled writes (any limit field) and enabled non-zero limits pass.
        assert!(m.write(addr::MSR_PKG_POWER_LIMIT, 0).is_ok());
        assert!(m
            .write(addr::MSR_PKG_POWER_LIMIT, PKG_POWER_LIMIT_ENABLE | 1)
            .is_ok());
    }

    #[test]
    fn rapl_unit_decoders_match_reset_values() {
        let m = MsrFile::new(12, 24);
        let unit = m.read(addr::MSR_RAPL_POWER_UNIT).unwrap();
        assert!((rapl_power_unit_watts(unit) - 0.125).abs() < 1e-12);
        assert!((rapl_time_unit_seconds(unit) - 1.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn perf_ctl_ratio_roundtrip() {
        assert_eq!(unpack_perf_ratio(pack_perf_ctl(24)), 24);
        assert_eq!(unpack_perf_ratio(pack_perf_ctl(10)), 10);
    }

    #[test]
    fn tpmi_domain0_aliases_legacy_pair() {
        let mut m = MsrFile::new(12, 24);
        // Write through the legacy address, read back through TPMI (and
        // vice versa): one storage cell, two addresses.
        m.write(
            addr::MSR_UNCORE_RATIO_LIMIT,
            pack_uncore_ratio_limit(15, 20),
        )
        .unwrap();
        assert_eq!(
            m.read(addr::tpmi_ratio_limit(0)).unwrap(),
            pack_uncore_ratio_limit(15, 20)
        );
        m.write(addr::tpmi_ratio_limit(0), pack_uncore_ratio_limit(18, 18))
            .unwrap();
        assert_eq!(
            unpack_uncore_ratio_limit(m.read(addr::MSR_UNCORE_RATIO_LIMIT).unwrap()),
            (18, 18)
        );
        assert_eq!(
            m.read(addr::tpmi_perf_status(0)).unwrap(),
            m.read(addr::MSR_UNCORE_PERF_STATUS).unwrap()
        );
    }

    #[test]
    fn tpmi_absent_domains_fault() {
        let mut one = MsrFile::new(12, 24);
        assert_eq!(
            one.read(addr::tpmi_ratio_limit(1)),
            Err(MsrError::Unimplemented(addr::tpmi_ratio_limit(1)))
        );
        assert!(one.write(addr::tpmi_ratio_limit(1), 1).is_err());

        let two = MsrFile::with_domains(12, 24, 2);
        assert_eq!(two.uncore_domains(), 2);
        assert_eq!(
            unpack_uncore_ratio_limit(two.read(addr::tpmi_ratio_limit(1)).unwrap()),
            (12, 24)
        );
        assert_eq!(two.read(addr::tpmi_perf_status(1)).unwrap(), 24);
        assert_eq!(
            two.read(addr::tpmi_ratio_limit(2)),
            Err(MsrError::Unimplemented(addr::tpmi_ratio_limit(2)))
        );
    }

    #[test]
    fn tpmi_perf_status_registers_read_only() {
        let mut m = MsrFile::with_domains(12, 24, 3);
        for d in 0..3 {
            assert_eq!(
                m.write(addr::tpmi_perf_status(d), 1),
                Err(MsrError::ReadOnly(addr::tpmi_perf_status(d)))
            );
        }
        // Per-domain ratio limits keep the 0x620 validation rules.
        assert!(matches!(
            m.write(addr::tpmi_ratio_limit(2), pack_uncore_ratio_limit(20, 15)),
            Err(MsrError::InvalidValue { .. })
        ));
    }

    #[test]
    fn domain_decoders_cover_legacy_and_tpmi() {
        assert_eq!(
            uncore_domain_of_ratio_limit(addr::MSR_UNCORE_RATIO_LIMIT),
            Some(0)
        );
        assert_eq!(
            uncore_domain_of_perf_status(addr::MSR_UNCORE_PERF_STATUS),
            Some(0)
        );
        for d in 0..MAX_UNCORE_DOMAINS {
            assert_eq!(
                uncore_domain_of_ratio_limit(addr::tpmi_ratio_limit(d)),
                Some(d)
            );
            assert_eq!(
                uncore_domain_of_perf_status(addr::tpmi_perf_status(d)),
                Some(d)
            );
            assert_eq!(
                uncore_domain_of_perf_status(addr::tpmi_ratio_limit(d)),
                None
            );
            assert_eq!(
                uncore_domain_of_ratio_limit(addr::tpmi_perf_status(d)),
                None
            );
        }
        assert_eq!(
            uncore_domain_of_ratio_limit(addr::tpmi_ratio_limit(MAX_UNCORE_DOMAINS)),
            None
        );
    }
}
