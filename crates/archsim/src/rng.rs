//! Deterministic pseudo-random number generation for the simulator.
//!
//! Simulations must be bit-reproducible across platforms and runs: the seed
//! is part of an experiment's identity. We therefore implement SplitMix64
//! (for seeding) and xoshiro256** (for the stream) locally instead of pulling
//! in an external RNG whose stream could change between versions.

/// SplitMix64: used to expand a single `u64` seed into xoshiro state.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the simulator's main PRNG.
///
/// Reference: Blackman & Vigna — "Scrambled linear pseudorandom number
/// generators" (TOMS 2021).
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator; any seed (including 0) is valid because the state
    /// is expanded through SplitMix64, which never yields the all-zero state
    /// for four consecutive outputs.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A sample from an approximately standard normal distribution
    /// (Irwin–Hall sum of 12 uniforms, exact mean 0 and variance 1; tails
    /// are clipped at ±6, which is irrelevant for measurement noise).
    pub fn normal(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }

    /// A multiplicative noise factor `1 + sigma * N(0,1)`, clamped to stay
    /// positive so noisy quantities (time, power) remain physical.
    pub fn noise_factor(&mut self, sigma: f64) -> f64 {
        (1.0 + sigma * self.normal()).max(0.01)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 per draw,
        // far below anything observable in a simulation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // First outputs for seed 0 from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_differs_across_seeds() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn noise_factor_is_positive() {
        let mut r = Xoshiro256::seed_from_u64(13);
        for _ in 0..10_000 {
            assert!(r.noise_factor(0.5) > 0.0);
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Xoshiro256::seed_from_u64(17);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
