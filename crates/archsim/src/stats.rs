//! Process-wide UFS telemetry counters.
//!
//! The experiment engine publishes one `earsim-telemetry` JSON line per
//! process (see `ear-experiments`); these atomics feed its `ufs` object
//! with per-domain activity: how many quantum boundaries actually moved
//! each domain's ratio, and the widest domain configuration instantiated.
//! Recording is off the hot path in the common case — a relaxed `fetch_add`
//! happens only on the (rare) quanta where a firmware controller changes
//! its ratio, and the gauge only at node construction.

use crate::msr::MAX_UNCORE_DOMAINS;
use std::sync::atomic::{AtomicU64, Ordering};

// Const-indexed statics keep `record_ratio_step` branch-free; the explicit
// initializer pins the array length to the supported domain count.
static DOMAIN_RATIO_STEPS: [AtomicU64; MAX_UNCORE_DOMAINS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static MAX_DOMAINS_SEEN: AtomicU64 = AtomicU64::new(0);
static RAPL_THROTTLE_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide UFS counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UfsStats {
    /// Widest per-socket domain configuration any node booted with.
    pub max_domains: u64,
    /// Ratio transitions observed per domain index, summed over all
    /// sockets and nodes.
    pub ratio_steps: [u64; MAX_UNCORE_DOMAINS],
}

impl UfsStats {
    /// Total ratio transitions across all domains.
    pub fn total_steps(&self) -> u64 {
        self.ratio_steps.iter().sum()
    }
}

/// Records that the firmware controller of domain `d` changed its ratio at
/// a quantum boundary.
pub fn record_ratio_step(d: usize) {
    if d < MAX_UNCORE_DOMAINS {
        DOMAIN_RATIO_STEPS[d].fetch_add(1, Ordering::Relaxed);
    }
}

/// Records the domain count of a newly booted node (monotonic gauge).
pub fn record_node_domains(n: usize) {
    MAX_DOMAINS_SEEN.fetch_max(n as u64, Ordering::Relaxed);
}

/// Records one RAPL PL1 throttle step (a socket's power limiter stepping
/// the effective pstate down at a quantum boundary). Feeds the telemetry
/// `powercap.throttle_events` counter.
pub fn record_rapl_throttle() {
    RAPL_THROTTLE_EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Total RAPL PL1 throttle steps recorded process-wide.
pub fn rapl_throttle_events() -> u64 {
    RAPL_THROTTLE_EVENTS.load(Ordering::Relaxed)
}

/// Reads the current counters.
pub fn snapshot() -> UfsStats {
    let mut ratio_steps = [0u64; MAX_UNCORE_DOMAINS];
    for (d, out) in ratio_steps.iter_mut().enumerate() {
        *out = DOMAIN_RATIO_STEPS[d].load(Ordering::Relaxed);
    }
    UfsStats {
        max_domains: MAX_DOMAINS_SEEN.load(Ordering::Relaxed),
        ratio_steps,
    }
}

/// Zeroes all counters (tests).
pub fn reset() {
    for c in &DOMAIN_RATIO_STEPS {
        c.store(0, Ordering::Relaxed);
    }
    MAX_DOMAINS_SEEN.store(0, Ordering::Relaxed);
    RAPL_THROTTLE_EVENTS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_domain() {
        // Node tests in this crate also touch the process-wide counters, so
        // assert on deltas rather than absolute values.
        let before = snapshot();
        record_ratio_step(0);
        record_ratio_step(1);
        record_ratio_step(1);
        record_ratio_step(MAX_UNCORE_DOMAINS); // out of range: ignored
        record_node_domains(2);
        let after = snapshot();
        assert_eq!(after.ratio_steps[0] - before.ratio_steps[0], 1);
        assert_eq!(after.ratio_steps[1] - before.ratio_steps[1], 2);
        assert!(after.max_domains >= 2);
        assert!(after.total_steps() >= before.total_steps() + 3);
    }
}
