//! Simulated time.
//!
//! The simulator is cycle-aggregate, not cycle-accurate: time advances in
//! variable-length intervals (hardware control-loop quanta, loop iterations).
//! The master clock counts microseconds in a `u64`, which is exact, ordered
//! and cheap; physics (durations from the performance model) is computed in
//! `f64` seconds and converted at the boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time point from seconds (rounded to the nearest microsecond).
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative simulated time: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// This time point as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Microseconds since epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference, as seconds.
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 * 1e-6
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    /// Advances by `rhs` seconds.
    fn add(self, rhs: f64) -> SimTime {
        debug_assert!(rhs >= 0.0);
        SimTime(self.0 + (rhs * 1e6).round() as u64)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    /// Difference in seconds (saturating at zero).
    fn sub(self, rhs: SimTime) -> f64 {
        self.secs_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

/// The master simulation clock.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `seconds`; panics (debug) on negative input.
    pub fn advance(&mut self, seconds: f64) {
        self.now += seconds;
    }

    /// Advances the clock to `t`, which must not be in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            t >= self.now,
            "clock moving backwards: {} -> {}",
            self.now,
            t
        );
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_secs_roundtrip() {
        let t = SimTime::from_secs(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert!((t.as_secs() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn add_seconds() {
        let t = SimTime::from_secs(1.0) + 0.5;
        assert_eq!(t, SimTime::from_secs(1.5));
    }

    #[test]
    fn sub_is_saturating() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a - b, 0.0);
        assert!((b - a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        c.advance(0.25);
        c.advance(0.75);
        assert_eq!(c.now(), SimTime::from_secs(1.0));
        c.advance_to(SimTime::from_secs(1.0)); // no-op, equal is fine
        assert_eq!(c.now(), SimTime::from_secs(1.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(0.5).to_string(), "0.500000s");
    }

    #[test]
    fn sub_microsecond_quantisation() {
        // 0.4 µs rounds to 0; 0.6 µs rounds to 1 µs.
        assert_eq!(SimTime::from_secs(4e-7).as_micros(), 0);
        assert_eq!(SimTime::from_secs(6e-7).as_micros(), 1);
    }
}
