//! Reference (naive O(window)) DynAIS implementation.
//!
//! This module preserves the original eager detector verbatim: every sample
//! rescans all `window/2` candidate periods and updates every run counter.
//! It is the executable specification for the incremental detector in
//! [`crate::level`] — the equivalence tests in `level.rs` and
//! `tests/properties.rs` assert that both emit identical event streams on
//! arbitrary signals — and the "before" side of the `earsim bench`
//! before/after numbers, which is why it ships in the library proper rather
//! than behind `#[cfg(test)]`.

use crate::dynais::{mix, DynaisConfig, DynaisResult};
use crate::level::LoopEvent;
use crate::window::SampleWindow;

/// One detection level, naive eager form: O(window) work per sample.
#[derive(Debug, Clone)]
pub struct ReferenceLevelDetector {
    window: SampleWindow,
    /// `run[p]` = length of the current streak of samples matching their
    /// `p`-distant predecessor (index 0 unused).
    run: Vec<u32>,
    min_period: usize,
    period: Option<usize>,
    pos_in_period: usize,
}

impl ReferenceLevelDetector {
    /// Creates a detector with the given window size and minimum period.
    pub fn new(window_size: usize, min_period: usize) -> Self {
        assert!(min_period >= 1);
        let max_period = window_size / 2;
        assert!(max_period >= min_period, "window too small for min period");
        Self {
            window: SampleWindow::new(window_size),
            run: vec![0; max_period + 1],
            min_period,
            period: None,
            pos_in_period: 0,
        }
    }

    /// Largest detectable period.
    pub fn max_period(&self) -> usize {
        self.run.len() - 1
    }

    /// The period of the loop currently tracked, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// Feeds one sample and classifies it.
    pub fn sample(&mut self, v: u64) -> LoopEvent {
        self.window.push(v);
        // Update match runs against each candidate period. `recent(0)` is
        // the sample just pushed; an empty window here is unreachable, and
        // the benign answer is "no structure".
        let Some(newest) = self.window.recent(0) else {
            return LoopEvent::NoLoop;
        };
        for p in 1..self.run.len() {
            match self.window.recent(p) {
                Some(prev) if prev == newest => self.run[p] = self.run[p].saturating_add(1),
                _ => self.run[p] = 0,
            }
        }

        match self.period {
            Some(p) => {
                if self.run[p] == 0 {
                    // Structure broke. Does a different loop take over?
                    self.period = None;
                    self.pos_in_period = 0;
                    if let Some(np) = self.detect() {
                        self.enter_loop(np);
                        LoopEvent::EndNewLoop
                    } else {
                        LoopEvent::EndLoop
                    }
                } else {
                    self.pos_in_period += 1;
                    if self.pos_in_period >= p {
                        self.pos_in_period = 0;
                        LoopEvent::NewIteration
                    } else {
                        LoopEvent::InLoop
                    }
                }
            }
            None => {
                if let Some(p) = self.detect() {
                    self.enter_loop(p);
                    LoopEvent::NewLoop
                } else {
                    LoopEvent::NoLoop
                }
            }
        }
    }

    /// Resets all detection state (application phase change).
    pub fn reset(&mut self) {
        self.window.clear();
        self.run.iter_mut().for_each(|r| *r = 0);
        self.period = None;
        self.pos_in_period = 0;
    }

    fn detect(&self) -> Option<usize> {
        (self.min_period..self.run.len()).find(|&p| self.run[p] as usize >= p)
    }

    fn enter_loop(&mut self, p: usize) {
        self.period = Some(p);
        self.pos_in_period = 0;
    }
}

/// The stacked reference detector, mirroring [`crate::DynAis`] exactly but
/// built on [`ReferenceLevelDetector`].
#[derive(Debug, Clone)]
pub struct ReferenceDynAis {
    levels: Vec<ReferenceLevelDetector>,
    digests: Vec<u64>,
    samples: u64,
}

impl ReferenceDynAis {
    /// Builds a detector stack from `config`.
    pub fn new(config: &DynaisConfig) -> Self {
        assert!(config.levels >= 1);
        Self {
            levels: (0..config.levels)
                .map(|_| ReferenceLevelDetector::new(config.window_size, config.min_period))
                .collect(),
            digests: vec![0; config.levels],
            samples: 0,
        }
    }

    /// A detector with EAR's default geometry.
    pub fn with_defaults() -> Self {
        Self::new(&DynaisConfig::default())
    }

    /// Total samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Period currently tracked at `level`, if any.
    pub fn period_at(&self, level: usize) -> Option<usize> {
        self.levels.get(level).and_then(|l| l.period())
    }

    /// The highest level currently inside a loop, if any.
    pub fn governing_level(&self) -> Option<usize> {
        (0..self.levels.len())
            .rev()
            .find(|&i| self.levels[i].period().is_some())
    }

    /// True when any level is inside a loop.
    pub fn in_loop(&self) -> bool {
        self.governing_level().is_some()
    }

    /// Feeds one sample through the stack (see [`crate::DynAis::sample`]).
    pub fn sample(&mut self, value: u64) -> DynaisResult {
        self.samples += 1;
        let mut best: Option<(usize, LoopEvent)> = None;
        let mut upward: Option<u64> = Some(value);
        let mut reset_above: Option<usize> = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            let Some(v) = upward else { break };
            let event = level.sample(v);
            self.digests[i] = mix(self.digests[i], v);
            if event.is_boundary() {
                best = Some((i, event));
                let p = level.period().unwrap_or(0) as u64;
                upward = Some(mix(self.digests[i], p | 0x9E37_79B9_0000_0000));
                self.digests[i] = 0;
                if event == LoopEvent::EndNewLoop {
                    reset_above = Some(i);
                }
            } else {
                if matches!(event, LoopEvent::EndLoop) {
                    self.digests[i] = 0;
                    reset_above = Some(i);
                    if best.is_none() {
                        best = Some((i, event));
                    }
                }
                upward = None;
            }
            if i == 0 && best.is_none() {
                best = Some((0, event));
            }
        }
        if let Some(i) = reset_above {
            for j in (i + 1)..self.levels.len() {
                self.levels[j].reset();
                self.digests[j] = 0;
            }
        }
        let (level, event) = best.unwrap_or((0, LoopEvent::NoLoop));
        DynaisResult {
            event,
            level,
            period: self.levels[level].period(),
        }
    }

    /// Resets every level.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        self.digests.iter_mut().for_each(|d| *d = 0);
    }
}
