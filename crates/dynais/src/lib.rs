//! # ear-dynais — dynamic application iterative structure detection
//!
//! Reimplementation of EAR's DynAIS component (paper §III): a stack of
//! windowed periodicity detectors that finds the outer iterative structure
//! of a parallel application from the stream of its MPI calls, without any
//! user hints or code marks.
//!
//! The EAR library hashes each MPI call (call id + buffer size + partner)
//! into a `u64` sample and feeds it to [`DynAis::sample`]; the returned
//! [`LoopEvent`]s delimit loop iterations, which EARL uses as signature
//! measurement windows.
//!
//! ```
//! use ear_dynais::DynAis;
//!
//! let mut detector = DynAis::with_defaults();
//! // An application issuing the same four MPI calls per iteration:
//! for _ in 0..8 {
//!     for call_hash in [11u64, 22, 33, 44] {
//!         detector.sample(call_hash);
//!     }
//! }
//! assert_eq!(detector.period_at(0), Some(4));
//! assert!(detector.in_loop());
//! ```

#![warn(missing_docs)]

pub mod dynais;
pub mod level;
pub mod reference;
pub mod window;

pub use dynais::{DynAis, DynaisConfig, DynaisResult};
pub use level::{LevelDetector, LoopEvent};
pub use reference::{ReferenceDynAis, ReferenceLevelDetector};
pub use window::SampleWindow;
