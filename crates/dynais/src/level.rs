//! Single-level periodicity detector.
//!
//! For every candidate period `p` the detector tracks the length of the
//! current run of samples satisfying `x[i] == x[i - p]`. A loop of period
//! `p` is declared once a full period has repeated (`run[p] >= p`), taking
//! the smallest such `p` (harmonics match at multiples). A single mismatch
//! at the detected period ends the loop — iterative HPC codes emit exactly
//! repeating MPI sequences, so mismatches mean real structure changes.
//!
//! # Incremental scheme
//!
//! The naive form (preserved in [`crate::reference`]) rescans all
//! `window/2` candidate periods on every sample. This implementation is
//! event-stream-identical but incremental:
//!
//! * **In a loop** (the steady state for iterative HPC codes) only the
//!   detected period is checked: one window compare per sample, O(1).
//!   No run counters are maintained; when the loop breaks, the runs are
//!   reconstructed exactly from the window contents.
//! * **Out of a loop** the detector keeps the compact set of *live*
//!   candidates (non-zero runs) and an occurrence index (value → previous
//!   occurrence chain). Each sample's matching periods are exactly the
//!   chain distances ≤ `max_period`; merging that sorted set with the
//!   previous live set zeroes stale runs and bumps continuing ones, so an
//!   aperiodic stream costs O(1) amortised instead of O(window).
//!
//! Reconstruction after an in-loop episode caps each run at the streak
//! visible in the window, `window_len - p` pairs. For every admissible
//! period `p ≤ window/2` that cap is ≥ `p`, so the detection predicate
//! `run[p] >= p` — the only consumer of run magnitudes — is unaffected:
//! the capped and true values sit on the same side of the threshold, and
//! subsequent increments move them in lockstep. The property tests in
//! `tests/properties.rs` exercise this equivalence on random and
//! adversarial signals.

use crate::window::SampleWindow;
use std::collections::HashMap;

/// Detector events, mirroring EAR's DynAIS states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopEvent {
    /// Not inside a detected loop.
    NoLoop,
    /// Inside a loop, mid-iteration.
    InLoop,
    /// Inside a loop, at an iteration boundary.
    NewIteration,
    /// A loop was just detected (first boundary).
    NewLoop,
    /// The current loop ended on this sample.
    EndLoop,
    /// The current loop ended and a different one begins immediately.
    EndNewLoop,
}

impl LoopEvent {
    /// True for events that mark an iteration boundary usable for
    /// signature computation.
    pub fn is_boundary(self) -> bool {
        matches!(
            self,
            LoopEvent::NewIteration | LoopEvent::NewLoop | LoopEvent::EndNewLoop
        )
    }
}

/// Sentinel for "no previous occurrence" in the chain links.
const NO_PREV: u64 = u64::MAX;

/// One detection level.
#[derive(Debug, Clone)]
pub struct LevelDetector {
    window: SampleWindow,
    /// `run[p]` = length of the current streak of samples matching their
    /// `p`-distant predecessor (index 0 unused). Invariant while out of a
    /// loop: `run[p] > 0` exactly for the periods listed in `live`.
    run: Vec<u32>,
    /// Ascending periods with a non-zero run (valid while out of a loop).
    live: Vec<u32>,
    /// Reusable buffer for the current sample's matching periods.
    scratch: Vec<u32>,
    /// value → absolute index of its most recent occurrence.
    occ_last: HashMap<u64, u64>,
    /// Per window slot: absolute index of the *previous* occurrence of the
    /// value stored there (`NO_PREV` if none). Together with `occ_last`
    /// this forms per-value occurrence chains through the window.
    occ_prev: Vec<u64>,
    min_period: usize,
    period: Option<usize>,
    pos_in_period: usize,
    /// Absolute index of the next sample (samples pushed since reset).
    total: u64,
}

impl LevelDetector {
    /// Creates a detector with the given window size and minimum period.
    pub fn new(window_size: usize, min_period: usize) -> Self {
        assert!(min_period >= 1);
        let max_period = window_size / 2;
        assert!(max_period >= min_period, "window too small for min period");
        Self {
            window: SampleWindow::new(window_size),
            run: vec![0; max_period + 1],
            live: Vec::new(),
            scratch: Vec::new(),
            occ_last: HashMap::new(),
            occ_prev: vec![NO_PREV; window_size],
            min_period,
            period: None,
            pos_in_period: 0,
            total: 0,
        }
    }

    /// Largest detectable period.
    pub fn max_period(&self) -> usize {
        self.run.len() - 1
    }

    /// The period of the loop currently tracked, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// Feeds one sample and classifies it.
    pub fn sample(&mut self, v: u64) -> LoopEvent {
        self.window.push(v);
        let t = self.total;
        self.total += 1;

        match self.period {
            Some(p) => {
                // In-loop fast path: the only run the naive detector ever
                // reads here is run[p], and run[p] != 0 after this sample
                // iff the sample matches its p-distant predecessor.
                if self.window.recent(p) == Some(v) {
                    self.pos_in_period += 1;
                    if self.pos_in_period >= p {
                        self.pos_in_period = 0;
                        LoopEvent::NewIteration
                    } else {
                        LoopEvent::InLoop
                    }
                } else {
                    // Structure broke. Does a different loop take over?
                    self.period = None;
                    self.pos_in_period = 0;
                    self.rebuild_runs();
                    if let Some(np) = self.detect() {
                        self.enter_loop(np);
                        LoopEvent::EndNewLoop
                    } else {
                        self.rebuild_occurrences();
                        LoopEvent::EndLoop
                    }
                }
            }
            None => {
                self.collect_matches(t, v);
                self.apply_matches();
                self.record_occurrence(t, v);
                if let Some(p) = self.detect() {
                    self.enter_loop(p);
                    LoopEvent::NewLoop
                } else {
                    LoopEvent::NoLoop
                }
            }
        }
    }

    /// Resets all detection state (application phase change).
    pub fn reset(&mut self) {
        self.window.clear();
        self.run.iter_mut().for_each(|r| *r = 0);
        self.live.clear();
        self.occ_last.clear();
        self.occ_prev.iter_mut().for_each(|p| *p = NO_PREV);
        self.period = None;
        self.pos_in_period = 0;
        self.total = 0;
    }

    /// Window slot holding the sample with absolute index `idx`. Valid for
    /// the last `capacity` samples: slots are filled round-robin from 0 and
    /// `reset` zeroes both the window head and `total` together.
    fn slot_of(&self, idx: u64) -> usize {
        (idx % self.window.capacity() as u64) as usize
    }

    /// Exact run reconstruction from the window, used when a loop breaks.
    /// Each run is the match streak ending at the newest sample, capped at
    /// the `window_len - p` pairs the window can show (predicate-equivalent
    /// to the uncapped value for every detectable period, see module docs).
    fn rebuild_runs(&mut self) {
        self.live.clear();
        let n = self.window.len();
        for p in 1..self.run.len() {
            let mut k = 0usize;
            while k + p < n {
                // Both offsets are < n, so the lookups cannot miss; a miss
                // would only shorten the reconstructed run, never panic.
                let (Some(a), Some(b)) = (self.window.recent(k), self.window.recent(k + p)) else {
                    break;
                };
                if a != b {
                    break;
                }
                k += 1;
            }
            self.run[p] = k as u32;
            if k > 0 {
                self.live.push(p as u32);
            }
        }
    }

    /// Rebuilds the occurrence chains from the current window contents,
    /// used when a loop ends without another taking over (the chains were
    /// not maintained while the in-loop fast path was active).
    fn rebuild_occurrences(&mut self) {
        self.occ_last.clear();
        let n = self.window.len();
        let first = self.total - n as u64;
        for i in 0..n {
            let idx = first + i as u64;
            // `n - 1 - i < n`, so the lookup cannot miss; skipping a missed
            // slot would only thin the rebuilt chains, never panic.
            let Some(v) = self.window.recent(n - 1 - i) else {
                continue;
            };
            let slot = self.slot_of(idx);
            self.occ_prev[slot] = self.occ_last.insert(v, idx).unwrap_or(NO_PREV);
        }
    }

    /// Fills `scratch` with the periods (ascending) at which the new sample
    /// `v` at index `t` matches its predecessor: exactly the distances to
    /// prior occurrences of `v` within `max_period`. Chain links are only
    /// followed while the distance bound holds, which also guarantees the
    /// linked slots have not been recycled (`max_period ≤ capacity / 2`).
    fn collect_matches(&mut self, t: u64, v: u64) {
        self.scratch.clear();
        let maxp = (self.run.len() - 1) as u64;
        let mut at = self.occ_last.get(&v).copied();
        while let Some(idx) = at {
            let d = t - idx;
            if d > maxp {
                break;
            }
            self.scratch.push(d as u32);
            let prev = self.occ_prev[self.slot_of(idx)];
            at = (prev != NO_PREV).then_some(prev);
        }
    }

    /// Merges the matched-period set in `scratch` into `run`/`live`:
    /// unmatched live runs reset to zero, matched runs extend by one. The
    /// matched set becomes the new live set (both are ascending).
    fn apply_matches(&mut self) {
        let mut j = 0;
        for &p in &self.live {
            while j < self.scratch.len() && self.scratch[j] < p {
                j += 1;
            }
            if j >= self.scratch.len() || self.scratch[j] != p {
                self.run[p as usize] = 0;
            }
        }
        for &p in &self.scratch {
            let r = &mut self.run[p as usize];
            *r = r.saturating_add(1);
        }
        std::mem::swap(&mut self.live, &mut self.scratch);
    }

    /// Threads the new sample into its value's occurrence chain.
    fn record_occurrence(&mut self, t: u64, v: u64) {
        let slot = self.slot_of(t);
        self.occ_prev[slot] = self.occ_last.insert(v, t).unwrap_or(NO_PREV);
        // Bound the index size: entries older than a full window can never
        // be within max_period again; prune them once enough have piled up
        // so the amortised cost per sample stays O(1).
        let cap = self.window.capacity();
        if self.occ_last.len() > 2 * cap {
            self.occ_last.retain(|_, &mut idx| t - idx <= cap as u64);
        }
    }

    fn detect(&self) -> Option<usize> {
        // `live` is ascending, so the first admissible hit is the smallest
        // period — identical to the naive full scan.
        self.live
            .iter()
            .map(|&p| p as usize)
            .find(|&p| p >= self.min_period && self.run[p] as usize >= p)
    }

    fn enter_loop(&mut self, p: usize) {
        self.period = Some(p);
        self.pos_in_period = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceLevelDetector;

    fn feed(det: &mut LevelDetector, pattern: &[u64], reps: usize) -> Vec<LoopEvent> {
        let mut out = Vec::new();
        for _ in 0..reps {
            for &v in pattern {
                out.push(det.sample(v));
            }
        }
        out
    }

    #[test]
    fn detects_simple_period_4() {
        let mut det = LevelDetector::new(64, 2);
        let events = feed(&mut det, &[1, 2, 3, 4], 6);
        assert_eq!(det.period(), Some(4));
        let first_new = events.iter().position(|e| *e == LoopEvent::NewLoop);
        // Detection after two full periods: 8 samples (index 7).
        assert_eq!(first_new, Some(7));
        // After detection every 4th sample is an iteration boundary.
        let boundaries = events.iter().filter(|e| e.is_boundary()).count();
        assert!(boundaries >= 4, "boundaries {boundaries}");
    }

    #[test]
    fn no_loop_on_random_stream() {
        let mut det = LevelDetector::new(64, 2);
        // Strictly increasing: never periodic.
        for v in 0..200u64 {
            assert_eq!(det.sample(v), LoopEvent::NoLoop);
        }
        assert_eq!(det.period(), None);
    }

    #[test]
    fn loop_end_detected() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[7, 8], 8);
        assert_eq!(det.period(), Some(2));
        // Break the pattern with non-repeating samples.
        let e = det.sample(100);
        assert_eq!(e, LoopEvent::EndLoop);
        assert_eq!(det.period(), None);
    }

    #[test]
    fn loop_to_loop_transition() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[1, 2], 10);
        assert_eq!(det.period(), Some(2));
        // Switch to a period-3 pattern; after enough repetitions the
        // detector must land in the new loop.
        let events = feed(&mut det, &[5, 6, 9], 6);
        assert_eq!(det.period(), Some(3));
        assert!(events
            .iter()
            .any(|e| matches!(e, LoopEvent::EndLoop | LoopEvent::EndNewLoop)));
    }

    #[test]
    fn smallest_period_wins_over_harmonics() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[1, 2], 12);
        // Period 2, not 4/6/8.
        assert_eq!(det.period(), Some(2));
    }

    #[test]
    fn min_period_respected() {
        let mut det = LevelDetector::new(64, 2);
        // A constant stream has period 1, below min_period 2: the detector
        // reports period 2 instead (smallest admissible harmonic).
        feed(&mut det, &[9], 20);
        assert_eq!(det.period(), Some(2));
    }

    #[test]
    fn reset_clears_state() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[1, 2, 3], 8);
        assert!(det.period().is_some());
        det.reset();
        assert_eq!(det.period(), None);
        assert_eq!(det.sample(1), LoopEvent::NoLoop);
    }

    #[test]
    fn long_period_within_window() {
        let mut det = LevelDetector::new(128, 2);
        let pattern: Vec<u64> = (0..50).collect();
        feed(&mut det, &pattern, 4);
        assert_eq!(det.period(), Some(50));
    }

    #[test]
    fn period_beyond_window_is_invisible() {
        let mut det = LevelDetector::new(32, 2); // max period 16
        let pattern: Vec<u64> = (0..20).collect();
        feed(&mut det, &pattern, 6);
        assert_eq!(det.period(), None);
    }

    // ---- equivalence against the reference (naive) detector ----------

    /// Deterministic xorshift64* for reproducible pseudo-random streams.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Feeds the same stream to both detectors and asserts identical
    /// events and identical tracked periods at every step.
    fn assert_equivalent(window: usize, min_period: usize, stream: &[u64]) {
        let mut opt = LevelDetector::new(window, min_period);
        let mut naive = ReferenceLevelDetector::new(window, min_period);
        for (i, &v) in stream.iter().enumerate() {
            let a = opt.sample(v);
            let b = naive.sample(v);
            assert_eq!(a, b, "event diverged at sample {i}");
            assert_eq!(opt.period(), naive.period(), "period diverged at {i}");
        }
    }

    #[test]
    fn equivalent_on_loop_switching_stream() {
        // Period 4 → break → period 3 → break → period 6 (harmonic of 3
        // content but distinct values), with aperiodic gaps between.
        let mut stream = Vec::new();
        for _ in 0..40 {
            stream.extend_from_slice(&[1, 2, 3, 4]);
        }
        stream.extend((500..540).map(|v| v * 7 + 1));
        for _ in 0..40 {
            stream.extend_from_slice(&[9, 8, 7]);
        }
        stream.extend((900..911).map(|v| v * 13 + 5));
        for _ in 0..30 {
            stream.extend_from_slice(&[21, 22, 23, 24, 25, 26]);
        }
        assert_equivalent(64, 2, &stream);
        assert_equivalent(250, 2, &stream);
    }

    #[test]
    fn equivalent_on_phase_shifted_and_harmonic_streams() {
        // Same period restarted off-phase, and a pattern whose halves
        // collide (harmonic pressure: matches at p and 2p).
        let mut stream = Vec::new();
        for _ in 0..30 {
            stream.extend_from_slice(&[5, 6, 7, 8]);
        }
        stream.extend_from_slice(&[7, 8]); // phase shift mid-pattern
        for _ in 0..30 {
            stream.extend_from_slice(&[5, 6, 7, 8]);
        }
        for _ in 0..25 {
            stream.extend_from_slice(&[1, 2, 1, 2, 1, 9]); // p=2 locally, p=6 truly
        }
        assert_equivalent(64, 2, &stream);
        assert_equivalent(40, 3, &stream);
    }

    #[test]
    fn equivalent_on_low_entropy_random_stream() {
        // Values drawn from a tiny alphabet create accidental matches at
        // many distances — the worst case for the live-set bookkeeping.
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        for alphabet in [2u64, 3, 5, 17] {
            let stream: Vec<u64> = (0..4000).map(|_| xorshift(&mut rng) % alphabet).collect();
            assert_equivalent(64, 2, &stream);
        }
    }

    #[test]
    fn equivalent_on_constant_and_near_constant_streams() {
        let mut stream = vec![4u64; 300];
        stream.push(9);
        stream.extend(std::iter::repeat_n(4, 300));
        assert_equivalent(64, 2, &stream);
        assert_equivalent(250, 2, &stream);
    }

    #[test]
    fn equivalent_across_reset() {
        let mut opt = LevelDetector::new(64, 2);
        let mut naive = ReferenceLevelDetector::new(64, 2);
        let mut rng = 42u64;
        for round in 0..4 {
            for i in 0..600 {
                let v = if i % 3 == 0 {
                    xorshift(&mut rng) % 4
                } else {
                    (i % 5) as u64
                };
                assert_eq!(opt.sample(v), naive.sample(v), "round {round} sample {i}");
            }
            opt.reset();
            naive.reset();
        }
    }
}
