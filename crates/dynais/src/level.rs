//! Single-level periodicity detector.
//!
//! For every candidate period `p` the detector keeps the length of the
//! current run of samples satisfying `x[i] == x[i - p]`. A loop of period
//! `p` is declared once a full period has repeated (`run[p] >= p`), taking
//! the smallest such `p` (harmonics match at multiples). A single mismatch
//! at the detected period ends the loop — iterative HPC codes emit exactly
//! repeating MPI sequences, so mismatches mean real structure changes.

use crate::window::SampleWindow;

/// Detector events, mirroring EAR's DynAIS states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopEvent {
    /// Not inside a detected loop.
    NoLoop,
    /// Inside a loop, mid-iteration.
    InLoop,
    /// Inside a loop, at an iteration boundary.
    NewIteration,
    /// A loop was just detected (first boundary).
    NewLoop,
    /// The current loop ended on this sample.
    EndLoop,
    /// The current loop ended and a different one begins immediately.
    EndNewLoop,
}

impl LoopEvent {
    /// True for events that mark an iteration boundary usable for
    /// signature computation.
    pub fn is_boundary(self) -> bool {
        matches!(
            self,
            LoopEvent::NewIteration | LoopEvent::NewLoop | LoopEvent::EndNewLoop
        )
    }
}

/// One detection level.
#[derive(Debug, Clone)]
pub struct LevelDetector {
    window: SampleWindow,
    /// `run[p]` = length of the current streak of samples matching their
    /// `p`-distant predecessor (index 0 unused).
    run: Vec<u32>,
    min_period: usize,
    period: Option<usize>,
    pos_in_period: usize,
}

impl LevelDetector {
    /// Creates a detector with the given window size and minimum period.
    pub fn new(window_size: usize, min_period: usize) -> Self {
        assert!(min_period >= 1);
        let max_period = window_size / 2;
        assert!(max_period >= min_period, "window too small for min period");
        Self {
            window: SampleWindow::new(window_size),
            run: vec![0; max_period + 1],
            min_period,
            period: None,
            pos_in_period: 0,
        }
    }

    /// Largest detectable period.
    pub fn max_period(&self) -> usize {
        self.run.len() - 1
    }

    /// The period of the loop currently tracked, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// Feeds one sample and classifies it.
    pub fn sample(&mut self, v: u64) -> LoopEvent {
        self.window.push(v);
        // Update match runs against each candidate period.
        let newest = self.window.recent(0).expect("just pushed");
        for p in 1..self.run.len() {
            match self.window.recent(p) {
                Some(prev) if prev == newest => self.run[p] = self.run[p].saturating_add(1),
                _ => self.run[p] = 0,
            }
        }

        match self.period {
            Some(p) => {
                if self.run[p] == 0 {
                    // Structure broke. Does a different loop take over?
                    self.period = None;
                    self.pos_in_period = 0;
                    if let Some(np) = self.detect() {
                        self.enter_loop(np);
                        LoopEvent::EndNewLoop
                    } else {
                        LoopEvent::EndLoop
                    }
                } else {
                    self.pos_in_period += 1;
                    if self.pos_in_period >= p {
                        self.pos_in_period = 0;
                        LoopEvent::NewIteration
                    } else {
                        LoopEvent::InLoop
                    }
                }
            }
            None => {
                if let Some(p) = self.detect() {
                    self.enter_loop(p);
                    LoopEvent::NewLoop
                } else {
                    LoopEvent::NoLoop
                }
            }
        }
    }

    /// Resets all detection state (application phase change).
    pub fn reset(&mut self) {
        self.window.clear();
        self.run.iter_mut().for_each(|r| *r = 0);
        self.period = None;
        self.pos_in_period = 0;
    }

    fn detect(&self) -> Option<usize> {
        (self.min_period..self.run.len()).find(|&p| self.run[p] as usize >= p)
    }

    fn enter_loop(&mut self, p: usize) {
        self.period = Some(p);
        self.pos_in_period = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut LevelDetector, pattern: &[u64], reps: usize) -> Vec<LoopEvent> {
        let mut out = Vec::new();
        for _ in 0..reps {
            for &v in pattern {
                out.push(det.sample(v));
            }
        }
        out
    }

    #[test]
    fn detects_simple_period_4() {
        let mut det = LevelDetector::new(64, 2);
        let events = feed(&mut det, &[1, 2, 3, 4], 6);
        assert_eq!(det.period(), Some(4));
        let first_new = events.iter().position(|e| *e == LoopEvent::NewLoop);
        // Detection after two full periods: 8 samples (index 7).
        assert_eq!(first_new, Some(7));
        // After detection every 4th sample is an iteration boundary.
        let boundaries = events.iter().filter(|e| e.is_boundary()).count();
        assert!(boundaries >= 4, "boundaries {boundaries}");
    }

    #[test]
    fn no_loop_on_random_stream() {
        let mut det = LevelDetector::new(64, 2);
        // Strictly increasing: never periodic.
        for v in 0..200u64 {
            assert_eq!(det.sample(v), LoopEvent::NoLoop);
        }
        assert_eq!(det.period(), None);
    }

    #[test]
    fn loop_end_detected() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[7, 8], 8);
        assert_eq!(det.period(), Some(2));
        // Break the pattern with non-repeating samples.
        let e = det.sample(100);
        assert_eq!(e, LoopEvent::EndLoop);
        assert_eq!(det.period(), None);
    }

    #[test]
    fn loop_to_loop_transition() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[1, 2], 10);
        assert_eq!(det.period(), Some(2));
        // Switch to a period-3 pattern; after enough repetitions the
        // detector must land in the new loop.
        let events = feed(&mut det, &[5, 6, 9], 6);
        assert_eq!(det.period(), Some(3));
        assert!(events
            .iter()
            .any(|e| matches!(e, LoopEvent::EndLoop | LoopEvent::EndNewLoop)));
    }

    #[test]
    fn smallest_period_wins_over_harmonics() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[1, 2], 12);
        // Period 2, not 4/6/8.
        assert_eq!(det.period(), Some(2));
    }

    #[test]
    fn min_period_respected() {
        let mut det = LevelDetector::new(64, 2);
        // A constant stream has period 1, below min_period 2: the detector
        // reports period 2 instead (smallest admissible harmonic).
        feed(&mut det, &[9], 20);
        assert_eq!(det.period(), Some(2));
    }

    #[test]
    fn reset_clears_state() {
        let mut det = LevelDetector::new(64, 2);
        feed(&mut det, &[1, 2, 3], 8);
        assert!(det.period().is_some());
        det.reset();
        assert_eq!(det.period(), None);
        assert_eq!(det.sample(1), LoopEvent::NoLoop);
    }

    #[test]
    fn long_period_within_window() {
        let mut det = LevelDetector::new(128, 2);
        let pattern: Vec<u64> = (0..50).collect();
        feed(&mut det, &pattern, 4);
        assert_eq!(det.period(), Some(50));
    }

    #[test]
    fn period_beyond_window_is_invisible() {
        let mut det = LevelDetector::new(32, 2); // max period 16
        let pattern: Vec<u64> = (0..20).collect();
        feed(&mut det, &pattern, 6);
        assert_eq!(det.period(), None);
    }
}
