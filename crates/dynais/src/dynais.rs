//! Multi-level DynAIS detector.
//!
//! EAR's DynAIS stacks several periodicity detectors: level 0 consumes the
//! raw MPI-event signal; whenever level *k* completes an iteration, a digest
//! of that iteration is fed to level *k+1*, so higher levels see one sample
//! per inner iteration and detect *outer* loops whose period is the product
//! of the levels' periods. EARL drives its signature computation from the
//! iteration boundaries of the highest level that is inside a loop.

use crate::level::{LevelDetector, LoopEvent};

/// Result of feeding one sample to the detector stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynaisResult {
    /// The reported event (from `level`).
    pub event: LoopEvent,
    /// The level the event belongs to (0 = raw samples).
    pub level: usize,
    /// Period of the loop at that level, when in a loop.
    pub period: Option<usize>,
}

/// Configuration for [`DynAis`].
#[derive(Debug, Clone)]
pub struct DynaisConfig {
    /// Number of stacked levels (EAR ships with up to 10; 4 is plenty for
    /// the paper's applications).
    pub levels: usize,
    /// Window size per level (EAR's default is in the hundreds).
    pub window_size: usize,
    /// Minimum admissible loop period.
    pub min_period: usize,
}

impl Default for DynaisConfig {
    fn default() -> Self {
        Self {
            levels: 4,
            window_size: 250,
            min_period: 2,
        }
    }
}

/// The stacked detector.
#[derive(Debug, Clone)]
pub struct DynAis {
    levels: Vec<LevelDetector>,
    /// Rolling digest of the in-progress iteration at each level, fed
    /// upward when the iteration completes.
    digests: Vec<u64>,
    /// Total samples consumed.
    samples: u64,
}

impl DynAis {
    /// Builds a detector stack from `config`.
    pub fn new(config: &DynaisConfig) -> Self {
        assert!(config.levels >= 1);
        Self {
            levels: (0..config.levels)
                .map(|_| LevelDetector::new(config.window_size, config.min_period))
                .collect(),
            digests: vec![0; config.levels],
            samples: 0,
        }
    }

    /// A detector with EAR's default geometry.
    pub fn with_defaults() -> Self {
        Self::new(&DynaisConfig::default())
    }

    /// Total samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Period currently tracked at `level`, if any.
    pub fn period_at(&self, level: usize) -> Option<usize> {
        self.levels.get(level).and_then(|l| l.period())
    }

    /// The highest level currently inside a loop, if any.
    pub fn governing_level(&self) -> Option<usize> {
        (0..self.levels.len())
            .rev()
            .find(|&i| self.levels[i].period().is_some())
    }

    /// True when any level is inside a loop.
    pub fn in_loop(&self) -> bool {
        self.governing_level().is_some()
    }

    /// Feeds one sample (a hashed MPI event) through the stack.
    ///
    /// Returns the event of the *highest* level that produced a boundary
    /// this round, or level 0's event when no boundary occurred anywhere.
    pub fn sample(&mut self, value: u64) -> DynaisResult {
        self.samples += 1;
        let mut best: Option<(usize, LoopEvent)> = None;
        let mut upward: Option<u64> = Some(value);
        let mut reset_above: Option<usize> = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            let Some(v) = upward else { break };
            let event = level.sample(v);
            // Fold the sample into this level's running iteration digest.
            self.digests[i] = mix(self.digests[i], v);
            if event.is_boundary() {
                best = Some((i, event));
                // Completed iteration: hand its digest (tagged with the
                // period so different loop shapes propagate differently)
                // to the next level and start a fresh digest.
                let p = level.period().unwrap_or(0) as u64;
                upward = Some(mix(self.digests[i], p | 0x9E37_79B9_0000_0000));
                self.digests[i] = 0;
                if event == LoopEvent::EndNewLoop {
                    // The inner loop changed shape: structure detected
                    // above was built from the old iterations.
                    reset_above = Some(i);
                }
            } else {
                if matches!(event, LoopEvent::EndLoop) {
                    self.digests[i] = 0;
                    reset_above = Some(i);
                    if best.is_none() {
                        best = Some((i, event));
                    }
                }
                upward = None;
            }
            if i == 0 && best.is_none() {
                best = Some((0, event));
            }
        }
        if let Some(i) = reset_above {
            for j in (i + 1)..self.levels.len() {
                self.levels[j].reset();
                self.digests[j] = 0;
            }
        }
        let (level, event) = best.unwrap_or((0, LoopEvent::NoLoop));
        DynaisResult {
            event,
            level,
            period: self.levels[level].period(),
        }
    }

    /// Resets every level (used when EARL re-enters policy selection after
    /// a drastic phase change).
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        self.digests.iter_mut().for_each(|d| *d = 0);
    }
}

/// 64-bit mix (SplitMix64 finaliser) used for iteration digests. Shared
/// with the reference stack so digest streams stay comparable.
pub(crate) fn mix(acc: u64, v: u64) -> u64 {
    let mut z = acc ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_pattern(d: &mut DynAis, pattern: &[u64], reps: usize) -> Vec<DynaisResult> {
        let mut out = Vec::new();
        for _ in 0..reps {
            for &v in pattern {
                out.push(d.sample(v));
            }
        }
        out
    }

    #[test]
    fn detects_inner_loop() {
        let mut d = DynAis::with_defaults();
        let events = feed_pattern(&mut d, &[10, 20, 30, 40, 50], 10);
        assert_eq!(d.period_at(0), Some(5));
        assert!(events
            .iter()
            .any(|r| r.event == LoopEvent::NewLoop && r.level == 0));
        // Iteration boundaries arrive once per period after detection.
        let boundaries = events.iter().filter(|r| r.event.is_boundary()).count();
        assert!(boundaries >= 6, "boundaries {boundaries}");
    }

    #[test]
    fn detects_outer_loop_of_alternating_inner_patterns() {
        // An outer iteration = 3×A-pattern then 1×B-pattern; level 0 sees
        // the raw signal, level 1 sees iteration digests.
        let mut d = DynAis::new(&DynaisConfig {
            levels: 3,
            window_size: 128,
            min_period: 2,
        });
        let a = [1u64, 2, 3, 4];
        let b = [7u64, 8, 9, 11];
        let mut got_upper = false;
        for _ in 0..60 {
            for _ in 0..3 {
                for &v in &a {
                    let r = d.sample(v);
                    got_upper |= r.level >= 1 && r.event.is_boundary();
                }
            }
            for &v in &b {
                let r = d.sample(v);
                got_upper |= r.level >= 1 && r.event.is_boundary();
            }
        }
        assert!(got_upper, "no upper-level loop detected");
        assert!(d.governing_level().unwrap_or(0) >= 1);
    }

    #[test]
    fn no_loop_on_aperiodic_signal() {
        let mut d = DynAis::with_defaults();
        for v in 0..500u64 {
            let r = d.sample(v.wrapping_mul(v).wrapping_add(v));
            assert_eq!(r.event, LoopEvent::NoLoop, "at {v}");
        }
        assert!(!d.in_loop());
    }

    #[test]
    fn governing_level_tracks_loop_state() {
        let mut d = DynAis::with_defaults();
        assert_eq!(d.governing_level(), None);
        feed_pattern(&mut d, &[5, 6, 7], 10);
        assert!(d.governing_level().is_some());
    }

    #[test]
    fn reset_forgets_everything() {
        let mut d = DynAis::with_defaults();
        feed_pattern(&mut d, &[5, 6, 7], 10);
        assert!(d.in_loop());
        d.reset();
        assert!(!d.in_loop());
        assert_eq!(d.period_at(0), None);
    }

    #[test]
    fn sample_count_accumulates() {
        let mut d = DynAis::with_defaults();
        feed_pattern(&mut d, &[1, 2], 5);
        assert_eq!(d.samples(), 10);
    }

    #[test]
    fn loop_break_reports_end() {
        let mut d = DynAis::with_defaults();
        feed_pattern(&mut d, &[1, 2, 3], 10);
        assert!(d.in_loop());
        let mut saw_end = false;
        for v in 1000..1100u64 {
            let r = d.sample(v * 31 + 7);
            saw_end |= matches!(r.event, LoopEvent::EndLoop | LoopEvent::EndNewLoop);
        }
        assert!(saw_end);
        assert!(!d.in_loop());
    }
}
