//! Fixed-capacity ring buffer of recent samples.

/// A ring buffer holding the last `capacity` samples of a signal.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    buf: Vec<u64>,
    head: usize,
    len: usize,
}

impl SampleWindow {
    /// Creates a window of the given capacity (must be ≥ 2).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "window capacity must be at least 2");
        Self {
            buf: vec![0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of samples currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a sample, evicting the oldest when full.
    pub fn push(&mut self, v: u64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.buf.len();
        if self.len < self.buf.len() {
            self.len += 1;
        }
    }

    /// The sample pushed `back` steps ago (0 = most recent). Returns `None`
    /// if fewer than `back + 1` samples are held.
    pub fn recent(&self, back: usize) -> Option<u64> {
        if back >= self.len {
            return None;
        }
        let cap = self.buf.len();
        let idx = (self.head + cap - 1 - back) % cap;
        Some(self.buf[idx])
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_recent() {
        let mut w = SampleWindow::new(4);
        assert!(w.is_empty());
        for v in 1..=3u64 {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.recent(0), Some(3));
        assert_eq!(w.recent(1), Some(2));
        assert_eq!(w.recent(2), Some(1));
        assert_eq!(w.recent(3), None);
    }

    #[test]
    fn eviction_on_overflow() {
        let mut w = SampleWindow::new(3);
        for v in 1..=5u64 {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.recent(0), Some(5));
        assert_eq!(w.recent(2), Some(3));
        assert_eq!(w.recent(3), None);
    }

    #[test]
    fn clear_resets() {
        let mut w = SampleWindow::new(3);
        w.push(1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.recent(0), None);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_capacity() {
        let _ = SampleWindow::new(1);
    }
}
