//! Fixed-capacity ring buffer of recent samples.

/// A ring buffer holding the last `capacity` samples of a signal.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    buf: Vec<u64>,
    head: usize,
    len: usize,
}

impl SampleWindow {
    /// Creates a window of the given capacity (must be ≥ 2).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "window capacity must be at least 2");
        Self {
            buf: vec![0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Window capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of samples currently held (saturates at capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a sample, evicting the oldest when full.
    ///
    /// The wrap is a conditional reset rather than `%`: the capacity is not
    /// required to be a power of two, and an integer division per sample
    /// would dominate the O(1) steady-state cost of the detector hot loop.
    #[inline]
    pub fn push(&mut self, v: u64) {
        debug_assert!(self.head < self.buf.len(), "head escaped the buffer");
        self.buf[self.head] = v;
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
        }
        if self.len < self.buf.len() {
            self.len += 1;
        }
    }

    /// The sample pushed `back` steps ago (0 = most recent). Returns `None`
    /// if fewer than `back + 1` samples are held.
    #[inline]
    pub fn recent(&self, back: usize) -> Option<u64> {
        if back >= self.len {
            return None;
        }
        debug_assert!(self.head < self.buf.len(), "head escaped the buffer");
        // `back < len <= cap` and `head < cap`, so one conditional subtract
        // replaces the modulo: head + cap - 1 - back lies in [0, 2*cap).
        let cap = self.buf.len();
        let mut idx = self.head + cap - 1 - back;
        if idx >= cap {
            idx -= cap;
        }
        Some(self.buf[idx])
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_recent() {
        let mut w = SampleWindow::new(4);
        assert!(w.is_empty());
        for v in 1..=3u64 {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.recent(0), Some(3));
        assert_eq!(w.recent(1), Some(2));
        assert_eq!(w.recent(2), Some(1));
        assert_eq!(w.recent(3), None);
    }

    #[test]
    fn eviction_on_overflow() {
        let mut w = SampleWindow::new(3);
        for v in 1..=5u64 {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.recent(0), Some(5));
        assert_eq!(w.recent(2), Some(3));
        assert_eq!(w.recent(3), None);
    }

    #[test]
    fn clear_resets() {
        let mut w = SampleWindow::new(3);
        w.push(1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.recent(0), None);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_capacity() {
        let _ = SampleWindow::new(1);
    }

    #[test]
    fn wrap_matches_shadow_history() {
        // Cross-check the conditional wrap against a plain Vec over several
        // full revolutions of a non-power-of-two buffer.
        let cap = 7;
        let mut w = SampleWindow::new(cap);
        let mut hist: Vec<u64> = Vec::new();
        for v in 0..100u64 {
            w.push(v * 2654435761 + 11);
            hist.push(v * 2654435761 + 11);
            for back in 0..=cap {
                let expect = if back < hist.len().min(cap) {
                    Some(hist[hist.len() - 1 - back])
                } else {
                    None
                };
                assert_eq!(w.recent(back), expect, "v={v} back={back}");
            }
        }
    }
}
