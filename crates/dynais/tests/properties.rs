//! Property tests for DynAIS: the invariants EARL depends on, and the
//! equivalence of the incremental detector with the naive reference.

use ear_dynais::{DynAis, DynaisConfig, LevelDetector, LoopEvent, ReferenceDynAis};
use proptest::prelude::*;

/// Building blocks for adversarial signals: the strategies compose periodic
/// bursts (with value collisions across patterns), phase shifts, and
/// aperiodic noise into one stream.
#[derive(Debug, Clone)]
enum Segment {
    /// `reps` repetitions of a pattern drawn from a small alphabet.
    Periodic { pattern: Vec<u64>, reps: usize },
    /// A partial pattern prefix — phase-shifts whatever follows.
    Prefix { pattern: Vec<u64>, cut: usize },
    /// Aperiodic filler from a small alphabet (accidental matches galore).
    Noise { values: Vec<u64> },
}

fn segment_strategy() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (proptest::collection::vec(0u64..8, 1..12), 3usize..12)
            .prop_map(|(pattern, reps)| Segment::Periodic { pattern, reps }),
        (proptest::collection::vec(0u64..8, 2..12), 1usize..8)
            .prop_map(|(pattern, cut)| Segment::Prefix { pattern, cut }),
        proptest::collection::vec(0u64..8, 1..40).prop_map(|values| Segment::Noise { values }),
    ]
}

fn render(segments: &[Segment]) -> Vec<u64> {
    let mut out = Vec::new();
    for s in segments {
        match s {
            Segment::Periodic { pattern, reps } => {
                for _ in 0..*reps {
                    out.extend_from_slice(pattern);
                }
            }
            Segment::Prefix { pattern, cut } => {
                let cut = (*cut).min(pattern.len());
                out.extend_from_slice(&pattern[..cut]);
            }
            Segment::Noise { values } => out.extend_from_slice(values),
        }
    }
    out
}

proptest! {
    /// The incremental detector and the naive reference emit identical
    /// event streams and tracked periods on arbitrary random input.
    #[test]
    fn level_matches_reference_on_random_input(
        values in proptest::collection::vec(0u64..10, 0..1500),
        window in prop_oneof![Just(16usize), Just(64), Just(250)],
    ) {
        let mut opt = LevelDetector::new(window, 2);
        let mut naive = ear_dynais::ReferenceLevelDetector::new(window, 2);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(opt.sample(v), naive.sample(v), "sample {}", i);
            prop_assert_eq!(opt.period(), naive.period(), "period after {}", i);
        }
    }

    /// Same equivalence on adversarial compositions: harmonic patterns,
    /// phase-shifted restarts, and loop-switching sequences.
    #[test]
    fn level_matches_reference_on_adversarial_signals(
        segments in proptest::collection::vec(segment_strategy(), 1..10),
    ) {
        let stream = render(&segments);
        let mut opt = LevelDetector::new(64, 2);
        let mut naive = ear_dynais::ReferenceLevelDetector::new(64, 2);
        for (i, &v) in stream.iter().enumerate() {
            prop_assert_eq!(opt.sample(v), naive.sample(v), "sample {}", i);
        }
    }

    /// The full stacks agree: identical `DynaisResult` streams (event,
    /// level, and period) through the multi-level digest machinery.
    #[test]
    fn stack_matches_reference_on_adversarial_signals(
        segments in proptest::collection::vec(segment_strategy(), 1..8),
        levels in 1usize..5,
    ) {
        let stream = render(&segments);
        let config = DynaisConfig { levels, window_size: 64, min_period: 2 };
        let mut opt = DynAis::new(&config);
        let mut naive = ReferenceDynAis::new(&config);
        for (i, &v) in stream.iter().enumerate() {
            prop_assert_eq!(opt.sample(v), naive.sample(v), "sample {}", i);
            prop_assert_eq!(opt.governing_level(), naive.governing_level(), "level after {}", i);
        }
    }
}

proptest! {
    /// Any strictly periodic signal with period within the window is
    /// eventually detected with exactly that period (patterns are built
    /// with distinct values so no smaller period exists).
    #[test]
    fn periodic_signal_detected(period in 2usize..40, reps in 4usize..10) {
        let mut det = LevelDetector::new(128, 2);
        let pattern: Vec<u64> = (0..period as u64).map(|i| i * 1_000_003 + 17).collect();
        for _ in 0..reps.max(3) {
            for &v in &pattern {
                det.sample(v);
            }
        }
        prop_assert_eq!(det.period(), Some(period));
    }

    /// The detector never reports a period below the configured minimum.
    #[test]
    fn min_period_is_enforced(samples in proptest::collection::vec(0u64..4, 20..300)) {
        let mut det = LevelDetector::new(64, 3);
        for v in samples {
            det.sample(v);
        }
        if let Some(p) = det.period() {
            prop_assert!(p >= 3, "period {p}");
        }
    }

    /// Iteration boundaries of a detected loop arrive exactly once per
    /// period after detection.
    #[test]
    fn boundaries_match_period(period in 2usize..20) {
        let mut det = LevelDetector::new(128, 2);
        let pattern: Vec<u64> = (0..period as u64).map(|i| i * 7919 + 3).collect();
        // Warm up until detection.
        for _ in 0..3 {
            for &v in &pattern {
                det.sample(v);
            }
        }
        prop_assert_eq!(det.period(), Some(period));
        // Measure boundary spacing over 5 more periods.
        let mut since_last = 0usize;
        let mut gaps = Vec::new();
        for _ in 0..5 {
            for &v in &pattern {
                since_last += 1;
                if det.sample(v).is_boundary() {
                    gaps.push(since_last);
                    since_last = 0;
                }
            }
        }
        prop_assert!(!gaps.is_empty());
        for g in gaps {
            prop_assert_eq!(g, period);
        }
    }

    /// EndLoop events are always preceded by a loop: the stack never emits
    /// an unmatched end, and `in_loop` is consistent with events.
    #[test]
    fn no_unmatched_end(values in proptest::collection::vec(0u64..6, 50..500)) {
        let mut d = DynAis::new(&DynaisConfig { levels: 3, window_size: 64, min_period: 2 });
        let mut in_loop = false;
        for v in values {
            let r = d.sample(v);
            match r.event {
                LoopEvent::NewLoop => in_loop = true,
                LoopEvent::EndLoop => {
                    prop_assert!(in_loop, "EndLoop without a preceding NewLoop");
                    in_loop = d.in_loop();
                }
                LoopEvent::EndNewLoop => {
                    prop_assert!(in_loop, "EndNewLoop without a preceding NewLoop");
                }
                LoopEvent::NewIteration | LoopEvent::InLoop => {
                    prop_assert!(d.in_loop());
                }
                LoopEvent::NoLoop => {}
            }
        }
    }

    /// Determinism: the same input stream yields the same event stream.
    #[test]
    fn deterministic(values in proptest::collection::vec(any::<u64>(), 10..200)) {
        let mut a = DynAis::with_defaults();
        let mut b = DynAis::with_defaults();
        for v in &values {
            prop_assert_eq!(a.sample(*v), b.sample(*v));
        }
    }

    /// Feeding arbitrary data never panics and sample count is exact.
    #[test]
    fn robust_to_arbitrary_input(values in proptest::collection::vec(any::<u64>(), 0..400)) {
        let mut d = DynAis::with_defaults();
        for v in &values {
            d.sample(*v);
        }
        prop_assert_eq!(d.samples(), values.len() as u64);
    }
}
