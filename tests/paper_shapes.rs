//! Programmatic regression tests of the paper's result *shapes*: the
//! qualitative claims of §VI, asserted against the same experiment data
//! the table/figure binaries print. If a model or policy change breaks a
//! reproduced shape, these fail.
//!
//! These re-run real experiment cells (3 averaged runs each) and take a
//! few seconds apiece.

use ear::experiments::figures;
use ear::experiments::tables;

/// Table III's shape: explicit UFS adds energy savings over plain DVFS on
/// every kernel, with small time penalties.
#[test]
fn kernels_eufs_beats_hw_ufs() {
    for (name, me, eu) in tables::table3_data() {
        assert!(
            eu.energy_saving_pct >= me.energy_saving_pct - 0.5,
            "{name}: eU {:.2}% vs ME {:.2}%",
            eu.energy_saving_pct,
            me.energy_saving_pct
        );
        assert!(
            eu.energy_saving_pct > 1.0,
            "{name}: eU saved only {:.2}%",
            eu.energy_saving_pct
        );
        assert!(
            eu.time_penalty_pct < 6.5,
            "{name}: penalty {:.2}%",
            eu.time_penalty_pct
        );
    }
}

/// Table IV's shape: under ME+eU the IMC frequency drops below the
/// hardware's choice on every kernel, while CUDA kernels fall furthest
/// (idle memory system).
#[test]
fn kernels_imc_drops_under_eufs() {
    let data = tables::table4_data();
    for (name, [none, _, eu]) in &data {
        assert!(
            eu.avg_imc_ghz < none.avg_imc_ghz - 0.15,
            "{name}: {:.2} -> {:.2}",
            none.avg_imc_ghz,
            eu.avg_imc_ghz
        );
    }
    let cuda_imc = data
        .iter()
        .filter(|(n, _)| n.contains("CUDA"))
        .map(|(_, [_, _, eu])| eu.avg_imc_ghz)
        .fold(f64::INFINITY, f64::min);
    assert!(
        cuda_imc < 1.7,
        "CUDA kernels should fall deepest: {cuda_imc}"
    );
}

/// Table VI's class split: CPU-bound applications keep nominal CPU under
/// ME; memory-bound ones are lowered (paper: HPCG 1.75, POP 2.23, …).
#[test]
fn applications_split_into_the_papers_classes() {
    for (name, [_, me, _]) in tables::table6_data() {
        let cpu_bound = matches!(
            name.as_str(),
            "BQCD" | "BT-MZ" | "GROMACS (I)" | "GROMACS (II)"
        );
        if cpu_bound {
            assert!(
                me.avg_cpu_ghz > 2.3,
                "{name}: ME lowered a CPU-bound app to {:.2}",
                me.avg_cpu_ghz
            );
        } else {
            assert!(
                me.avg_cpu_ghz < 2.3,
                "{name}: ME kept a memory-bound app at {:.2}",
                me.avg_cpu_ghz
            );
        }
    }
}

/// Table VII's shape: PCK-relative savings exceed DC-relative savings for
/// every application, with a non-constant gap (the paper's §VI argument).
#[test]
fn pck_exceeds_dc_savings_with_varying_gap() {
    let data = tables::table7_data();
    let mut gaps = Vec::new();
    for (name, dc, pck) in &data {
        assert!(pck > dc, "{name}: PCK {pck:.2} <= DC {dc:.2}");
        gaps.push(pck - dc);
    }
    let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = gaps.iter().cloned().fold(0.0f64, f64::max);
    assert!(max - min > 0.5, "gap suspiciously constant: {gaps:?}");
}

/// Fig. 3's shape: savings and penalties grow monotonically with
/// unc_policy_th, and power savings outpace time penalties.
#[test]
fn bqcd_threshold_sweep_is_monotone() {
    let data = figures::fig3_data().expect("fig 3 data");
    // Rows: ME, eU 1 %, eU 2 %, eU 3 %.
    let savings: Vec<f64> = data.iter().map(|(_, c)| c.energy_saving_pct).collect();
    for w in savings.windows(2) {
        assert!(w[1] >= w[0] - 0.3, "savings not monotone: {savings:?}");
    }
    for (label, c) in &data[1..] {
        assert!(
            c.power_saving_pct > c.time_penalty_pct * 2.0,
            "{label}: saving {:.2} vs penalty {:.2}",
            c.power_saving_pct,
            c.time_penalty_pct
        );
    }
}

/// Fig. 1's shape: the energy-saving curve over the uncore sweep rises,
/// peaks strictly inside the range, and declines at the bottom for the
/// memory-intensive kernel (the paper's §II observation).
#[test]
fn uncore_sweep_has_an_interior_energy_peak_for_lu() {
    let (_, points) = figures::fig1_data("LU.D (MPI)").expect("fig 1 data");
    let savings: Vec<f64> = points.iter().map(|p| p.vs_hw.energy_saving_pct).collect();
    let peak_idx = savings
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    assert!(peak_idx > 2, "peak too close to the top: {savings:?}");
    assert!(
        peak_idx < savings.len() - 1,
        "no decline at the bottom: {savings:?}"
    );
    // Time penalty grows monotonically as the uncore drops.
    let pens: Vec<f64> = points.iter().map(|p| p.vs_hw.time_penalty_pct).collect();
    for w in pens.windows(2) {
        assert!(w[1] >= w[0] - 0.15, "penalties not monotone: {pens:?}");
    }
}
