//! End-to-end integration tests spanning every crate: workloads calibrated
//! to the paper run under EARL on the simulated cluster, and the paper's
//! headline behaviours emerge.

use ear::archsim::Cluster;
use ear::core::{EarDaemon, Earl, EarlConfig, ImcSearch, PolicySettings};
use ear::experiments::{compare, run_cell, run_matrix, RunKind};
use ear::mpisim::run_job;
use ear::workloads::{build_job, by_name, calibrate};

fn earl_runtimes(policy: &str, settings: PolicySettings, n: usize) -> Vec<EarDaemon<Earl>> {
    let config = EarlConfig {
        policy_name: policy.into(),
        settings,
        ..Default::default()
    };
    (0..n)
        .map(|_| EarDaemon::new(Earl::from_registry(config.clone()).expect("built-ins")))
        .collect()
}

/// The headline result: explicit UFS saves energy on CPU-bound codes that
/// plain DVFS cannot touch (paper abstract: ~9 % average energy saving at
/// ~3 % time penalty; up to 8 % extra savings over HW UFS).
#[test]
fn eufs_saves_energy_on_cpu_bound_apps_where_dvfs_cannot() {
    let targets = by_name("BT-MZ").unwrap();
    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        ("ME".to_string(), RunKind::me(0.05)),
        ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
    ];
    let results = run_matrix(&targets, &cells, 3, 1001);
    let me = compare(&results[0], &results[1]);
    let eu = compare(&results[0], &results[2]);

    // DVFS alone finds nothing (CPU stays nominal).
    assert!(
        me.energy_saving_pct.abs() < 1.0,
        "ME saving {}",
        me.energy_saving_pct
    );
    // Explicit UFS finds 4-10 % with a small time penalty.
    assert!(
        eu.energy_saving_pct > 4.0,
        "eU saving {}",
        eu.energy_saving_pct
    );
    assert!(
        eu.time_penalty_pct < 3.0,
        "eU penalty {}",
        eu.time_penalty_pct
    );
    // And the savings come from the uncore, not the CPU.
    assert!((results[2].avg_cpu_ghz - 2.39).abs() < 0.03);
    assert!(results[2].avg_imc_ghz < 2.1);
}

/// Memory-bound apps: DVFS lowers the CPU (paper Table VI), and eUFS adds
/// additional savings on top.
#[test]
fn memory_bound_apps_get_both_dvfs_and_eufs_savings() {
    let targets = by_name("HPCG").unwrap();
    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        ("ME".to_string(), RunKind::me(0.05)),
        ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
    ];
    let results = run_matrix(&targets, &cells, 3, 1002);
    // ME lowers the CPU frequency substantially (paper: 1.75 GHz).
    assert!(
        results[1].avg_cpu_ghz < 2.0,
        "ME cpu {}",
        results[1].avg_cpu_ghz
    );
    let me = compare(&results[0], &results[1]);
    let eu = compare(&results[0], &results[2]);
    assert!(me.energy_saving_pct > 2.0);
    assert!(eu.energy_saving_pct > me.energy_saving_pct);
    // The uncore stays high for the most memory-bound app (paper: 2.29).
    assert!(
        results[2].avg_imc_ghz > 2.0,
        "imc {}",
        results[2].avg_imc_ghz
    );
}

/// Package-relative savings exceed DC-relative savings (paper Table VII's
/// argument for evaluating with DC node power).
#[test]
fn pck_savings_exceed_dc_savings() {
    for name in ["BT-MZ", "HPCG"] {
        let targets = by_name(name).unwrap();
        let cells = vec![
            ("No policy".to_string(), RunKind::NoPolicy),
            ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
        ];
        let results = run_matrix(&targets, &cells, 3, 1003);
        let c = compare(&results[0], &results[1]);
        assert!(
            c.pkg_power_saving_pct > c.power_saving_pct + 1.0,
            "{name}: PCK {} vs DC {}",
            c.pkg_power_saving_pct,
            c.power_saving_pct
        );
    }
}

/// A larger `unc_policy_th` buys more savings at more penalty (Fig. 3/4).
#[test]
fn unc_threshold_trades_penalty_for_savings() {
    let targets = by_name("BQCD").unwrap();
    let reference = run_cell(&targets, &RunKind::NoPolicy, "ref", 3, 1004);
    let mut last_saving = -1.0;
    let mut last_penalty = -1.0;
    for th in [0.01, 0.03] {
        let r = run_cell(&targets, &RunKind::me_eufs(0.03, th), "eu", 3, 1004);
        let c = compare(&reference, &r);
        assert!(c.energy_saving_pct > last_saving, "th {th}: {c:?}");
        assert!(c.time_penalty_pct >= last_penalty - 0.2, "th {th}: {c:?}");
        last_saving = c.energy_saving_pct;
        last_penalty = c.time_penalty_pct;
    }
}

/// The HW-guided search converges in fewer policy iterations than the
/// linear search when the hardware settles below the maximum (DGEMM's
/// AVX512 case; paper §V-B: "this second strategy is faster").
#[test]
fn hw_guided_search_converges_faster_than_linear() {
    let targets = by_name("DGEMM").unwrap();
    let cal = calibrate(&targets).unwrap();
    let job = build_job(&cal);
    let steps = |search: ImcSearch| {
        let settings = PolicySettings {
            imc_search: search,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cal.node_config.clone(), 1, 1005);
        let mut rts = earl_runtimes("min_energy_eufs", settings, 1);
        run_job(&mut cluster, &job, &mut rts);
        // Count IMC-stage frequency applications (search steps).
        rts[0]
            .inner()
            .freq_changes()
            .iter()
            .filter(|(_, f)| f.imc_max_ratio < cal.node_config.uncore_max_ratio)
            .count()
    };
    let guided = steps(ImcSearch::HwGuided);
    let linear = steps(ImcSearch::Linear);
    assert!(
        guided < linear,
        "guided {guided} steps vs linear {linear} steps"
    );
}

/// A mid-run phase change sends the policy back to CPU_FREQ_SEL and EARL
/// re-converges (the paper's §V-B restart path + validation).
#[test]
fn phase_change_triggers_reconvergence() {
    let targets = by_name("BQCD").unwrap();
    let cal = calibrate(&targets).unwrap();
    // First 40 iterations normal, then instructions double and memory
    // halves: a drastic signature change.
    let job = ear::workloads::build_phase_change_job(&cal, 40, 2.0, 0.5);
    let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 1006);
    let mut rts = earl_runtimes("min_energy_eufs", PolicySettings::default(), targets.nodes);
    run_job(&mut cluster, &job, &mut rts);
    let earl = rts[0].inner();
    // EARL must have reacted after the phase change: at least one default
    // restore (full uncore range) after a restricted one.
    let changes = earl.freq_changes();
    let first_restricted = changes.iter().position(|(_, f)| f.imc_max_ratio < 24);
    assert!(first_restricted.is_some(), "no uncore restriction at all");
    let restored_after = changes
        .iter()
        .skip(first_restricted.unwrap() + 1)
        .any(|(_, f)| f.imc_max_ratio == 24);
    assert!(
        restored_after,
        "no restart after the phase change: {changes:?}"
    );
}

/// The full catalog runs under every built-in policy without panicking and
/// with bounded time penalties.
#[test]
fn all_policies_run_on_all_workloads() {
    for name in ["BQCD", "HPCG", "BT-MZ.C (OpenMP)", "DGEMM", "BT.CUDA.D"] {
        let targets = by_name(name).unwrap();
        let reference = run_cell(&targets, &RunKind::NoPolicy, "ref", 1, 1007);
        for policy in ["monitoring", "min_energy", "min_energy_eufs"] {
            let kind = RunKind::Policy {
                name: policy.into(),
                settings: PolicySettings::default(),
            };
            let r = run_cell(&targets, &kind, policy, 1, 1007);
            let c = compare(&reference, &r);
            assert!(
                c.time_penalty_pct < 8.0,
                "{name}/{policy}: penalty {}",
                c.time_penalty_pct
            );
            assert!(
                c.energy_saving_pct > -2.0,
                "{name}/{policy}: negative saving {}",
                c.energy_saving_pct
            );
        }
    }
}

/// min_time_to_solution (+eUFS): the future-work policy accelerates from a
/// lowered default frequency.
#[test]
fn min_time_policies_accelerate_from_low_default() {
    let targets = by_name("BT-MZ").unwrap();
    let settings = PolicySettings {
        def_pstate: 4,
        ..Default::default()
    };
    // Reference: stuck at the default pstate (2.1 GHz), no policy.
    let slow = run_cell(
        &targets,
        &RunKind::Fixed {
            cpu: 4,
            imc_ratio: None,
        },
        "fixed 2.1",
        1,
        1008,
    );
    for policy in ["min_time", "min_time_eufs"] {
        let kind = RunKind::Policy {
            name: policy.into(),
            settings: settings.clone(),
        };
        let r = run_cell(&targets, &kind, policy, 1, 1008);
        assert!(
            r.time_s < slow.time_s * 0.95,
            "{policy}: {} vs fixed {}",
            r.time_s,
            slow.time_s
        );
        assert!(r.avg_cpu_ghz > slow.avg_cpu_ghz + 0.15);
    }
}

/// Determinism across the whole stack: same seeds, same results.
#[test]
fn full_stack_determinism() {
    let targets = by_name("GROMACS (I)").unwrap();
    let run = || {
        let r = run_cell(&targets, &RunKind::me_eufs(0.05, 0.02), "eu", 2, 1009);
        (r.time_s, r.dc_energy_j, r.avg_imc_ghz)
    };
    assert_eq!(run(), run());
}
