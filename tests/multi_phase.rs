//! Multi-phase applications under EARL: the signature-change machinery
//! (policy validation, the 15 % threshold, the CPU_FREQ_SEL restart) must
//! track phase cycles, re-optimising each phase.

use ear::archsim::Cluster;
use ear::core::{EarDaemon, Earl, EarlConfig};
use ear::mpisim::run_job;
use ear::workloads::phases::compute_with_memory_bursts;

#[test]
fn earl_reoptimises_across_phase_cycles() {
    let app = compute_with_memory_bursts();
    let job = app.build_job().unwrap();
    let nodes = job.nodes;
    let node_config = ear::workloads::by_name("BT-MZ")
        .unwrap()
        .platform
        .node_config();
    let mut cluster = Cluster::new(node_config, nodes, 31);
    let mut rts: Vec<EarDaemon<Earl>> = (0..nodes)
        .map(|_| EarDaemon::new(Earl::from_registry(EarlConfig::default()).unwrap()))
        .collect();
    run_job(&mut cluster, &job, &mut rts);

    let earl = rts[0].inner();
    // EARL saw both phases: signatures span compute-like (low GB/s) and
    // burst-like (high GB/s) behaviour.
    let sigs = earl.signatures();
    assert!(sigs.len() >= 8, "{} signatures", sigs.len());
    let min_gbs = sigs.iter().map(|s| s.gbs).fold(f64::INFINITY, f64::min);
    let max_gbs = sigs.iter().map(|s| s.gbs).fold(0.0f64, f64::max);
    assert!(min_gbs < 30.0, "never saw the compute phase: {min_gbs}");
    assert!(max_gbs > 100.0, "never saw the burst phase: {max_gbs}");

    // The policy restarted at least once: after converging with a reduced
    // uncore ceiling, a phase change restored the default full range.
    let changes = earl.freq_changes();
    let mut saw_restriction = false;
    let mut saw_restore_after = false;
    for (_, f) in changes {
        if f.imc_max_ratio < 24 {
            saw_restriction = true;
        } else if saw_restriction && f.imc_max_ratio == 24 {
            saw_restore_after = true;
        }
    }
    assert!(saw_restriction, "no uncore restriction at all");
    assert!(
        saw_restore_after,
        "no policy restart across phases: {changes:?}"
    );

    // Multiple frequency decisions happened (one convergence per phase
    // visit at minimum is too strict — signature windows span ~7
    // iterations — but well more than a single convergence is required).
    assert!(changes.len() >= 6, "{} changes", changes.len());
}
