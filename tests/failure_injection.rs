//! Failure injection: EARL must tolerate the real-world warts the paper's
//! production deployment faces — stalled power meters, noisy measurements,
//! phase changes mid-search — without crashing or making wild decisions.

use ear::archsim::{Cluster, Node, NodeConfig};
use ear::core::{EarDaemon, Earl, EarlConfig, PolicySettings};
use ear::mpisim::{run_job, MpiEvent, NodeRuntime};
use ear::workloads::{build_job, by_name, calibrate};

/// A runtime wrapper that stalls the power meter partway through the job.
struct MeterKiller<R> {
    inner: R,
    calls: u32,
    stall_at_call: u32,
    stall_s: f64,
}

impl<R: NodeRuntime> NodeRuntime for MeterKiller<R> {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks: usize) {
        self.inner.on_job_start(node, job_name, ranks);
    }
    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.calls += 1;
        if self.calls == self.stall_at_call {
            node.inject_power_meter_stall(self.stall_s);
        }
        self.inner.on_mpi_call(node, event);
    }
    fn on_tick(&mut self, node: &mut Node) {
        self.inner.on_tick(node);
    }
    fn on_job_end(&mut self, node: &mut Node) {
        self.inner.on_job_end(node);
    }
}

#[test]
fn earl_survives_a_power_meter_stall_and_still_converges() {
    let targets = by_name("BT-MZ").unwrap();
    let cal = calibrate(&targets).unwrap();
    let job = build_job(&cal);
    let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 2101);
    let config = EarlConfig::default();
    let mut rts: Vec<MeterKiller<EarDaemon<Earl>>> = (0..targets.nodes)
        .map(|_| MeterKiller {
            inner: EarDaemon::new(Earl::from_registry(config.clone()).unwrap()),
            calls: 0,
            stall_at_call: 40, // early in the IMC search
            stall_s: 30.0,
        })
        .collect();
    run_job(&mut cluster, &job, &mut rts);
    let earl = rts[0].inner.inner();
    // Signatures kept flowing (the stall only delays windows)…
    assert!(
        earl.signatures().len() >= 5,
        "{} signatures",
        earl.signatures().len()
    );
    // …every accepted signature carries a usable power reading…
    for sig in earl.signatures() {
        assert!(sig.has_power(), "signature without power accepted");
    }
    // …and the policy still converged to a reduced uncore.
    let last = earl.freq_changes().last().expect("frequency changes").1;
    assert!(last.imc_max_ratio < 24, "no convergence: {last:?}");
}

#[test]
fn heavy_measurement_noise_does_not_destabilise_the_policy() {
    // 10× the calibrated run-to-run noise: the policy may converge to a
    // different ratio, but must stay within physical bounds and never
    // produce a net slowdown beyond the thresholds' intent.
    let targets = by_name("BQCD").unwrap();
    let cal = calibrate(&targets).unwrap();
    let job = build_job(&cal);
    let mut noisy_config: NodeConfig = cal.node_config.clone();
    noisy_config.noise_sigma *= 10.0;

    let mut cluster = Cluster::new(noisy_config, targets.nodes, 2102);
    let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
        .map(|_| EarDaemon::new(Earl::from_registry(EarlConfig::default()).unwrap()))
        .collect();
    let report = run_job(&mut cluster, &job, &mut rts);
    // Time within 10 % of the characterisation (noise + policy penalty).
    assert!(
        (report.seconds() - targets.time_s).abs() / targets.time_s < 0.10,
        "time {} vs {}",
        report.seconds(),
        targets.time_s
    );
    for (_, f) in rts[0].inner().freq_changes() {
        assert!(f.imc_max_ratio >= 12 && f.imc_max_ratio <= 24);
        assert!(f.imc_min_ratio <= f.imc_max_ratio);
    }
}

#[test]
fn tiny_thresholds_with_noise_stay_conservative() {
    // unc_policy_th = 0 with noise: the search must revert almost
    // immediately — the paper's Fig. 4 "0 %" case — and never get stuck.
    let targets = by_name("BT-MZ").unwrap();
    let cal = calibrate(&targets).unwrap();
    let job = build_job(&cal);
    let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 2103);
    let config = EarlConfig {
        settings: PolicySettings {
            unc_policy_th: 0.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
        .map(|_| EarDaemon::new(Earl::from_registry(config.clone()).unwrap()))
        .collect();
    let report = run_job(&mut cluster, &job, &mut rts);
    // Essentially no slowdown allowed — and essentially none taken.
    assert!(
        report.seconds() < targets.time_s * 1.02,
        "time {} vs {}",
        report.seconds(),
        targets.time_s
    );
    // The final uncore ceiling is at/near the hardware's choice.
    let last = rts[0].inner().freq_changes().last().unwrap().1;
    assert!(last.imc_max_ratio >= 22, "over-aggressive at 0%: {last:?}");
}
