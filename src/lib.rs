//! # ear — reproduction of "Explicit uncore frequency scaling for energy
//! optimisation policies with EAR in Intel architectures" (CLUSTER 2021)
//!
//! This facade crate re-exports the workspace:
//!
//! * [`archsim`] — simulated Skylake-SP nodes (MSRs, DVFS, uncore, RAPL,
//!   INM, firmware UFS, power/performance models).
//! * [`mpisim`] — simulated MPI with PMPI-style interception.
//! * [`dynais`] — EAR's iterative-structure detector.
//! * [`workloads`] — the paper's kernels and applications, calibrated to
//!   its characterisation tables.
//! * [`core`] — EARL: signatures, energy models, the policy plugin API and
//!   the `min_energy_to_solution` + explicit-UFS policy (the contribution).
//! * [`experiments`] — regeneration of every table and figure.
//! * [`errors`] — the unified [`errors::EarError`] the stack's fallible
//!   paths return.
//! * [`trace`] — the ring-buffered structured trace bus (`earsim --trace`).
//! * [`netd`] — the networked daemon stack: wire codec, EARD server,
//!   EARGM poller and the `earsim serve`/`loadgen` load generator.
//! * [`jobstream`] — seeded Poisson job arrivals over a powercapped
//!   fleet (`earsim jobstream`): FCFS queue, EARGM budget rebalancing,
//!   RAPL PL1 backstop.
//!
//! Start with `examples/quickstart.rs`.

pub use ear_archsim as archsim;
pub use ear_core as core;
pub use ear_dynais as dynais;
pub use ear_errors as errors;
pub use ear_experiments as experiments;
pub use ear_jobstream as jobstream;
pub use ear_mpisim as mpisim;
pub use ear_netd as netd;
pub use ear_sched as sched;
pub use ear_trace as trace;
pub use ear_workloads as workloads;
