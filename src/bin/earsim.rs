//! `earsim` — the command-line front end of the reproduction.
//!
//! ```text
//! earsim list                          # the workload catalog
//! earsim run --app HPCG [options]     # one experiment cell
//! earsim sweep [--quick]              # (pstate x uncore) grid + fitted policy
//! earsim table 3 | earsim fig 7       # regenerate a paper table/figure
//! earsim future                       # the future-work experiments
//! earsim surface --app DGEMM          # 2-D CPU x IMC energy surface
//! earsim related                      # ME+eU vs the DUF controller
//! earsim conf                         # print the default ear.conf
//! earsim all                          # the whole evaluation
//! earsim serve --socket /tmp/eard.sock   # networked EARD daemon
//! earsim loadgen --socket /tmp/eard.sock --clients 8 --duration 2
//! ```
//!
//! Run options: `--policy NAME` (default `min_energy_eufs`), `--cpu-th PCT`
//! (default 5), `--unc-th PCT` (default 2), `--runs N` (default 3),
//! `--seed N`, `--search hw|linear`, `--range maxonly|pinned|band:N`.
//!
//! Every subcommand accepts a global `--jobs N`: the worker-thread count
//! of the parallel experiment engine (default: available parallelism; the
//! `EAR_JOBS` environment variable also works). Results are bit-identical
//! for any `--jobs` value. After the output, a machine-readable engine
//! summary (tasks, wall time, speedup vs serial estimate, calibration
//! cache hits) is printed to stderr as one `earsim-telemetry:` JSON line.
//!
//! Two more global flags: `--model NAME` selects the energy model every
//! EARL instance uses (`avx512` is the default, `default` the plain
//! Intel model), and `--trace FILE` enables the structured trace bus and
//! writes the recorded event stream as JSONL when the command finishes.
//!
//! `--mpi-break-even N` pins the node count below which the MPI job
//! driver steps nodes serially instead of fanning out (`0` forces the
//! parallel path everywhere). It outranks both the `EAR_MPI_BREAK_EVEN`
//! environment variable and the persisted machine calibration the driver
//! measures otherwise.
//!
//! Results are also cached persistently: every (workload, configuration,
//! seed) cell's averaged result lands in `target/earsim-cache/` keyed by
//! a content digest, so repeated invocations are served from disk with
//! byte-identical output. `--no-cache` (or `EAR_CACHE=0`) disables the
//! store, `EAR_CACHE_DIR` relocates it; corrupt entries are dropped and
//! re-simulated, never trusted.

use ear::core::conf::{parse_ear_conf, render_ear_conf};
use ear::core::{EarlConfig, ImcRange, ImcSearch, ModelRegistry, PolicySettings};
use ear::errors::EarError;
use ear::experiments::{compare, figures, run_cell, tables, RunKind};
use ear::workloads::{by_name, full_catalog};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: earsim <list|run|sweep|table|fig|all> [args]\n\
         \n\
         earsim list\n\
         earsim run --app NAME [--policy P] [--cpu-th PCT] [--unc-th PCT]\n\
         \x20          [--runs N] [--seed N] [--search hw|linear]\n\
         \x20          [--range maxonly|pinned|band:N]\n\
         earsim run --conf FILE --app NAME   (ear.conf instead of flags)\n\
         earsim sweep [--app NAME]... [--quick] [--runs N] [--seed N]\n\
         \x20            [--out-dir DIR] [--naive] [--max-residual PCT]\n\
         \x20            full (pstate x uncore) grid characterisation,\n\
         \x20            T/P surface fit, one-shot fitted policy report\n\
         earsim sweep --fig1 NAME   fixed-uncore sweep (paper Fig. 1)\n\
         earsim table <1..8>   (8 = per-die uncore domains)\n\
         earsim fig <1|3..8>\n\
         earsim surface --app NAME\n\
         earsim related\n\
         earsim future\n\
         earsim conf\n\
         earsim all\n\
         earsim bench [--quick] [--out FILE]   hot-path micro-benchmarks\n\
         earsim bench --verify FILE            validate a BENCH json artifact\n\
         \x20                                  (fails rows with speedup < 1.0\n\
         \x20                                  unless allowlisted)\n\
         earsim bench --verify-telemetry FILE  validate an earsim-telemetry line\n\
         earsim serve --socket PATH|HOST:PORT [--workers N] [--node N]\n\
         \x20            [--ceiling PSTATE:IMCMAX] [--max-seconds S]\n\
         \x20            [--blocking]   (thread-per-connection server\n\
         \x20                           instead of the readiness loop)\n\
         earsim loadgen --socket PATH|HOST:PORT [--clients K]\n\
         \x20            [--duration S] [--shutdown]\n\
         earsim cluster [--nodes N] [--fanout N] [--duration S]\n\
         \x20            [--shards N] [--poll-every S] [--batch N]\n\
         \x20            [--budget W]   in-process daemons behind an EARGM\n\
         \x20                           aggregation tree, real codec\n\
         earsim jobstream [--nodes N] [--budget W] [--arrival-rate J/H]\n\
         \x20            [--seed N] [--max-jobs N] [--quick] [--uds DIR]\n\
         \x20            [--pstate-only]   Poisson job arrivals over a\n\
         \x20                           powercapped fleet: FCFS queue,\n\
         \x20                           EARGM budget rebalancing, RAPL PL1\n\
         earsim powercap   cap sweep, cap-vs-throughput frontier, and the\n\
         \x20                           oversubscribed-budget stress scenario\n\
         \n\
         global: --jobs N     engine worker threads (default: all cores);\n\
         \x20                results are bit-identical for any worker count.\n\
         \x20                An 'earsim-telemetry:' JSON summary goes to stderr.\n\
         \x20      --model M    energy model for every EARL instance\n\
         \x20                (avx512 default, or default).\n\
         \x20      --trace F    record the structured event stream and write\n\
         \x20                it to F as JSONL on exit.\n\
         \x20      --no-cache   disable the persistent result cache\n\
         \x20                (default store: target/earsim-cache, or\n\
         \x20                $EAR_CACHE_DIR; EAR_CACHE=0 also disables).\n\
         \x20      --mpi-break-even N\n\
         \x20                node count below which the MPI job driver\n\
         \x20                stays serial (0 = always fan out; default: a\n\
         \x20                persisted machine calibration; the\n\
         \x20                EAR_MPI_BREAK_EVEN env var works too)."
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            match it.next() {
                Some(v) => {
                    flags.insert(key.to_string(), v.clone());
                }
                None => {
                    eprintln!("missing value for --{key}");
                    usage();
                }
            }
        } else {
            eprintln!("unexpected argument '{a}'");
            usage();
        }
    }
    flags
}

fn flag_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    flags.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--{key} expects a number, got '{v}'");
            usage();
        })
    })
}

fn cmd_list() {
    println!(
        "{:<20} {:>5} {:>6} {:>8} {:>6} {:>7} {:>9}",
        "name", "nodes", "ranks", "time(s)", "CPI", "GB/s", "power(W)"
    );
    for w in full_catalog() {
        println!(
            "{:<20} {:>5} {:>6} {:>8.0} {:>6.2} {:>7.2} {:>9.1}",
            w.name, w.nodes, w.ranks_per_node, w.time_s, w.cpi, w.gbs, w.dc_power_w
        );
    }
}

fn cmd_run(flags: HashMap<String, String>) -> Result<(), EarError> {
    let Some(app) = flags.get("app") else {
        eprintln!("run needs --app (see `earsim list`)");
        usage();
    };
    let Some(targets) = by_name(app) else {
        return Err(EarError::unknown("workload", app));
    };
    let policy = flags
        .get("policy")
        .map_or("min_energy_eufs", |s| s.as_str());
    let cpu_th = flag_f64(&flags, "cpu-th", 5.0) / 100.0;
    let unc_th = flag_f64(&flags, "unc-th", 2.0) / 100.0;
    let runs = flag_f64(&flags, "runs", 3.0) as usize;
    let seed = flag_f64(&flags, "seed", 42.0) as u64;
    let search = match flags.get("search").map(|s| s.as_str()) {
        None | Some("hw") => ImcSearch::HwGuided,
        Some("linear") => ImcSearch::Linear,
        Some(other) => {
            eprintln!("--search expects hw|linear, got '{other}'");
            usage();
        }
    };
    let range = match flags.get("range").map(|s| s.as_str()) {
        None | Some("maxonly") => ImcRange::MaxOnly,
        Some("pinned") => ImcRange::Pinned,
        Some(b) if b.starts_with("band:") => {
            let n = b[5..].parse().unwrap_or_else(|_| {
                eprintln!("--range band:N expects a number");
                usage();
            });
            ImcRange::Band(n)
        }
        Some(other) => {
            eprintln!("--range expects maxonly|pinned|band:N, got '{other}'");
            usage();
        }
    };

    // --conf FILE loads an ear.conf as the base; flags then override.
    let (policy, settings) = match flags.get("conf") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| EarError::io(path.as_str(), e))?;
            let parsed: EarlConfig = parse_ear_conf(&text)?;
            let mut st = parsed.settings;
            if flags.contains_key("cpu-th") {
                st.cpu_policy_th = cpu_th;
            }
            if flags.contains_key("unc-th") {
                st.unc_policy_th = unc_th;
            }
            // The conf file's Model= applies unless --model overrode it.
            if ear::experiments::default_model().is_none() {
                ear::experiments::set_default_model(&parsed.model_name);
            }
            let name = flags.get("policy").cloned().unwrap_or(parsed.policy_name);
            (name, st)
        }
        None => (
            policy.to_string(),
            PolicySettings {
                cpu_policy_th: cpu_th,
                unc_policy_th: unc_th,
                imc_search: search,
                imc_range: range,
                ..Default::default()
            },
        ),
    };
    let policy = policy.as_str();
    let reference = run_cell(&targets, &RunKind::NoPolicy, "No policy", runs, seed);
    let kind = RunKind::Policy {
        name: policy.to_string(),
        settings,
    };
    let result = run_cell(&targets, &kind, policy, runs, seed);
    let c = compare(&reference, &result);

    println!(
        "workload : {app} ({} nodes, {} runs averaged)",
        targets.nodes, runs
    );
    println!(
        "policy   : {policy} (cpu_th {:.0}%, unc_th {:.0}%)",
        cpu_th * 100.0,
        unc_th * 100.0
    );
    println!();
    println!("            {:>12} {:>12}", "No policy", policy);
    println!(
        "time (s)    {:>12.1} {:>12.1}",
        reference.time_s, result.time_s
    );
    println!(
        "DC power(W) {:>12.1} {:>12.1}",
        reference.dc_power_w, result.dc_power_w
    );
    println!(
        "energy (kJ) {:>12.0} {:>12.0}",
        reference.dc_energy_j / 1e3,
        result.dc_energy_j / 1e3
    );
    println!(
        "CPU (GHz)   {:>12.2} {:>12.2}",
        reference.avg_cpu_ghz, result.avg_cpu_ghz
    );
    println!(
        "IMC (GHz)   {:>12.2} {:>12.2}",
        reference.avg_imc_ghz, result.avg_imc_ghz
    );
    println!();
    println!(
        "time penalty {:.2}%   power saving {:.2}%   energy saving {:.2}%",
        c.time_penalty_pct, c.power_saving_pct, c.energy_saving_pct
    );
    Ok(())
}

/// `earsim sweep`: the grid-scale (pstate × uncore) characterisation
/// campaign — per-workload surfaces, the quadratic fit, the fitted-policy
/// comparison. The valueless `--quick`/`--naive` flags force a custom
/// argument loop. The paper's fixed-uncore Fig. 1 sweep lives under
/// `earsim fig 1` (and per app via `--fig1 NAME`).
fn cmd_sweep(rest: &[String]) -> Result<(), EarError> {
    let mut cfg = ear::experiments::SweepConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("missing value for --{key}");
                usage();
            }
        };
        match a.as_str() {
            "--app" => {
                let name = value("app");
                if by_name(&name).is_none() {
                    return Err(EarError::unknown("workload", name));
                }
                cfg.apps.push(name);
            }
            "--fig1" => {
                // The legacy fixed-uncore sweep (paper Fig. 1) this
                // subcommand used to render.
                let name = value("fig1");
                if by_name(&name).is_none() {
                    return Err(EarError::unknown("workload", name));
                }
                print!("{}", figures::fig1_render(&name)?);
                return Ok(());
            }
            "--quick" => cfg.quick = true,
            "--naive" => cfg.naive = true,
            "--out-dir" => cfg.out_dir = Some(std::path::PathBuf::from(value("out-dir"))),
            "--runs" => {
                cfg.runs = parse_num(&value("runs"), "runs");
                if cfg.runs == 0 {
                    eprintln!("--runs expects a positive integer");
                    usage();
                }
            }
            "--seed" => cfg.base_seed = parse_num(&value("seed"), "seed"),
            "--max-residual" => {
                let pct = parse_num::<f64>(&value("max-residual"), "max-residual");
                if !pct.is_finite() || pct <= 0.0 {
                    eprintln!("--max-residual expects a positive percentage");
                    usage();
                }
                cfg.max_residual = Some(pct / 100.0);
            }
            _ => {
                eprintln!("unknown sweep argument '{a}'");
                usage();
            }
        }
    }
    print!("{}", ear::experiments::run_sweep(&cfg)?);
    Ok(())
}

fn cmd_table(n: &str) -> Result<(), EarError> {
    let out = match n {
        "1" => tables::table1(),
        "2" => tables::table2(),
        "3" => tables::table3(),
        "4" => tables::table4(),
        "5" => tables::table5(),
        "6" => tables::table6(),
        "7" => tables::table7(),
        "8" => tables::table8(),
        _ => return Err(EarError::config(format!("tables are 1..8, got '{n}'"))),
    };
    print!("{out}");
    Ok(())
}

fn cmd_fig(n: &str) -> Result<(), EarError> {
    let out = match n {
        "1" => figures::fig1()?,
        "3" => figures::fig3()?,
        "4" => figures::fig4()?,
        "5" => figures::fig5()?,
        "6" => figures::fig6()?,
        "7" => figures::fig7()?,
        "8" => figures::fig8()?,
        _ => {
            return Err(EarError::config(format!(
                "figures are 1 and 3..8, got '{n}'"
            )))
        }
    };
    print!("{out}");
    Ok(())
}

/// `earsim bench`: runs the dependency-free hot-path micro-benchmarks, or
/// validates a previously emitted `BENCH_hotpath.json` with `--verify`.
/// Flags are positionless; `--quick` trims iteration counts for CI smoke.
fn cmd_bench(rest: &[String]) -> Result<(), EarError> {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut verify: Option<String> = None;
    let mut verify_telemetry: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("missing value for --out");
                    usage();
                }
            },
            "--verify" => match it.next() {
                Some(v) => verify = Some(v.clone()),
                None => {
                    eprintln!("missing value for --verify");
                    usage();
                }
            },
            "--verify-telemetry" => match it.next() {
                Some(v) => verify_telemetry = Some(v.clone()),
                None => {
                    eprintln!("missing value for --verify-telemetry");
                    usage();
                }
            },
            _ => {
                eprintln!("unknown bench argument '{a}'");
                usage();
            }
        }
    }
    if let Some(path) = verify_telemetry {
        let text = std::fs::read_to_string(&path).map_err(|e| EarError::io(path.as_str(), e))?;
        // Accept either the bare JSON object or a captured stderr stream
        // containing the prefixed `earsim-telemetry: {...}` line.
        let line = text
            .lines()
            .rev()
            .find_map(|l| {
                let l = l.trim();
                l.strip_prefix("earsim-telemetry:")
                    .map(str::trim)
                    .or_else(|| l.starts_with('{').then_some(l))
            })
            .ok_or_else(|| EarError::config(format!("{path}: no earsim-telemetry line found")))?;
        ear::experiments::bench::validate_telemetry_json(line)
            .map_err(|e| EarError::config(format!("{path}: INVALID: {e}")))?;
        println!("{path}: telemetry valid");
        return Ok(());
    }
    if let Some(path) = verify {
        let text = std::fs::read_to_string(&path).map_err(|e| EarError::io(path.as_str(), e))?;
        let n = ear::experiments::bench::validate_json(&text)
            .map_err(|e| EarError::config(format!("{path}: INVALID: {e}")))?;
        // Schema-valid is not enough: a row whose optimised path lost to
        // the implementation it replaced is a regression and fails the
        // verify (unless allowlisted — see bench::SPEEDUP_ALLOWLIST).
        let gated = ear::experiments::bench::verify_speedups(&text)
            .map_err(|e| EarError::config(format!("{path}: REGRESSION: {e}")))?;
        println!("{path}: valid ({n} benches, {gated} speedup-gated)");
        return Ok(());
    }
    let report = ear::experiments::bench::run(quick);
    print!("{}", report.render());
    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).map_err(|e| EarError::io(path.as_str(), e))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `earsim serve`: runs the networked EARD daemon until the shutdown
/// poison frame (or `--max-seconds`). Needs a custom argument loop: the
/// generic `parse_flags` requires a value after every flag.
fn cmd_serve(rest: &[String]) -> Result<(), EarError> {
    let mut cfg = ear::netd::ServerConfig::default();
    let mut socket: Option<String> = None;
    let mut blocking = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("missing value for --{key}");
                usage();
            }
        };
        match a.as_str() {
            "--socket" => socket = Some(value("socket")),
            "--workers" => {
                cfg.workers = parse_num(&value("workers"), "workers");
                if cfg.workers == 0 {
                    eprintln!("--workers expects a positive integer");
                    usage();
                }
            }
            "--node" => cfg.eard.node = parse_num::<u64>(&value("node"), "node"),
            "--max-seconds" => {
                cfg.max_seconds = Some(parse_num::<f64>(&value("max-seconds"), "max-seconds"));
            }
            "--ceiling" => {
                let v = value("ceiling");
                let Some((pstate, imc)) = v.split_once(':') else {
                    eprintln!("--ceiling expects PSTATE:IMCMAX, got '{v}'");
                    usage();
                };
                cfg.eard.ceiling = Some(ear::core::NodeFreqs {
                    cpu: parse_num(pstate, "ceiling"),
                    imc_min_ratio: parse_num(imc, "ceiling"),
                    imc_max_ratio: parse_num(imc, "ceiling"),
                    imc_dom: ear::core::DomainLimits::LEGACY,
                });
            }
            "--blocking" => blocking = true,
            _ => {
                eprintln!("unknown serve argument '{a}'");
                usage();
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("serve needs --socket PATH|HOST:PORT");
        usage();
    };
    let listener = ear::netd::NetListener::bind(&socket)?;
    eprintln!(
        "earsim: serving on {} ({})",
        listener.describe(),
        if blocking {
            "blocking"
        } else {
            "readiness loop"
        }
    );
    let report = if blocking {
        ear::netd::server::run(listener, cfg)?
    } else {
        ear::netd::server::run_async(listener, cfg)?
    };
    println!(
        "accepted {}  rejected {}  requests {}  conn_errors {}  shutdown {}",
        report.accepted,
        report.rejected,
        report.requests,
        report.conn_errors,
        report.shutdown_requested
    );
    Ok(())
}

/// `earsim loadgen`: closed-loop load against a running daemon. The
/// valueless `--shutdown` flag forces a custom argument loop here too.
fn cmd_loadgen(rest: &[String]) -> Result<(), EarError> {
    let mut cfg = ear::netd::LoadgenConfig::default();
    let mut socket: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("missing value for --{key}");
                usage();
            }
        };
        match a.as_str() {
            "--socket" => socket = Some(value("socket")),
            "--clients" => {
                cfg.clients = parse_num(&value("clients"), "clients");
                if cfg.clients == 0 {
                    eprintln!("--clients expects a positive integer");
                    usage();
                }
            }
            "--duration" => {
                let s = parse_num::<f64>(&value("duration"), "duration");
                if !s.is_finite() || s <= 0.0 {
                    eprintln!("--duration expects a positive number of seconds");
                    usage();
                }
                cfg.duration = std::time::Duration::from_secs_f64(s);
            }
            "--shutdown" => cfg.shutdown_after = true,
            _ => {
                eprintln!("unknown loadgen argument '{a}'");
                usage();
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("loadgen needs --socket PATH|HOST:PORT");
        usage();
    };
    let endpoint = ear::netd::Endpoint::parse(&socket);
    let report = ear::netd::loadgen::run(&endpoint, &cfg)?;
    println!("{}", report.render());
    Ok(())
}

/// `earsim cluster`: thousands of in-process simulated daemons behind an
/// EARGM aggregation tree, every byte through the real codec. Exits
/// nonzero on any protocol or decode error.
fn cmd_cluster(rest: &[String]) -> Result<(), EarError> {
    let mut cfg = ear::netd::ClusterConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("missing value for --{key}");
                usage();
            }
        };
        let positive_secs = |v: &str, key: &str| {
            let s = parse_num::<f64>(v, key);
            if !s.is_finite() || s <= 0.0 {
                eprintln!("--{key} expects a positive number of seconds");
                usage();
            }
            std::time::Duration::from_secs_f64(s)
        };
        match a.as_str() {
            "--nodes" => {
                cfg.nodes = parse_num(&value("nodes"), "nodes");
                if cfg.nodes == 0 {
                    eprintln!("--nodes expects a positive integer");
                    usage();
                }
            }
            "--fanout" => {
                cfg.fanout = parse_num(&value("fanout"), "fanout");
                if cfg.fanout < 2 {
                    eprintln!("--fanout expects an integer >= 2");
                    usage();
                }
            }
            "--shards" => {
                let n: usize = parse_num(&value("shards"), "shards");
                if n == 0 {
                    eprintln!("--shards expects a positive integer");
                    usage();
                }
                cfg.shards = Some(n);
            }
            "--duration" => cfg.duration = positive_secs(&value("duration"), "duration"),
            "--poll-every" => cfg.poll_every = positive_secs(&value("poll-every"), "poll-every"),
            "--batch" => {
                cfg.batch = parse_num(&value("batch"), "batch");
                if cfg.batch == 0 {
                    eprintln!("--batch expects a positive integer");
                    usage();
                }
            }
            "--budget" => cfg.budget_w = Some(parse_num(&value("budget"), "budget")),
            _ => {
                eprintln!("unknown cluster argument '{a}'");
                usage();
            }
        }
    }
    let mut cluster = ear::netd::SimCluster::new(cfg)?;
    eprintln!(
        "earsim: cluster of {} daemons, aggregation tree depth {}",
        cluster.nodes(),
        cluster.tree_depth()
    );
    let report = cluster.run()?;
    println!("{}", report.render());
    if report.errors > 0 {
        return Err(EarError::Protocol(format!(
            "cluster run finished with {} protocol/decode errors",
            report.errors
        )));
    }
    Ok(())
}

/// `earsim jobstream`: a seeded Poisson job stream over a powercapped
/// fleet — arrivals queue FCFS, the manager polls demand and
/// redistributes the datacenter budget as jobs enter and leave, every
/// node runs the dual-knob `powercap` policy with RAPL PL1 armed as the
/// hard backstop. `--uds DIR` moves every manager↔daemon exchange onto
/// real unix sockets through the async netd stack.
fn cmd_jobstream(rest: &[String]) -> Result<(), EarError> {
    let mut cfg = ear::jobstream::StreamConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("missing value for --{key}");
                usage();
            }
        };
        match a.as_str() {
            "--nodes" => {
                cfg.fleet_nodes = parse_num(&value("nodes"), "nodes");
                if cfg.fleet_nodes == 0 {
                    eprintln!("--nodes expects a positive integer");
                    usage();
                }
            }
            "--budget" => {
                cfg.budget_w = parse_num(&value("budget"), "budget");
                if !cfg.budget_w.is_finite() || cfg.budget_w <= 0.0 {
                    eprintln!("--budget expects a positive number of watts");
                    usage();
                }
            }
            "--arrival-rate" => {
                cfg.arrival_rate_per_hour = parse_num(&value("arrival-rate"), "arrival-rate");
                if !cfg.arrival_rate_per_hour.is_finite() || cfg.arrival_rate_per_hour <= 0.0 {
                    eprintln!("--arrival-rate expects a positive jobs/hour rate");
                    usage();
                }
            }
            "--seed" => cfg.seed = parse_num(&value("seed"), "seed"),
            "--max-jobs" => {
                cfg.max_jobs = parse_num(&value("max-jobs"), "max-jobs");
                if cfg.max_jobs == 0 {
                    eprintln!("--max-jobs expects a positive integer");
                    usage();
                }
            }
            "--quick" => cfg.quick = true,
            "--pstate-only" => cfg.pstate_only = true,
            "--uds" => {
                let dir = std::path::PathBuf::from(value("uds"));
                // The daemons bind their sockets inside the directory;
                // create it up front so a fresh path just works.
                std::fs::create_dir_all(&dir).map_err(|e| EarError::Io {
                    path: dir.display().to_string(),
                    message: e.to_string(),
                })?;
                cfg.wire = ear::jobstream::Wire::Uds { dir };
            }
            _ => {
                eprintln!("unknown jobstream argument '{a}'");
                usage();
            }
        }
    }
    let report = ear::jobstream::run_stream(cfg)?;
    print!("{}", report.render());
    if report.protocol_errors > 0 {
        return Err(EarError::Protocol(format!(
            "job stream finished with {} protocol errors",
            report.protocol_errors
        )));
    }
    Ok(())
}

/// Parses a numeric flag value or dies with usage.
fn parse_num<T: std::str::FromStr>(v: &str, key: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("--{key} expects a number, got '{v}'");
        usage();
    })
}

/// Strips a valueless global `--flag` from anywhere on the line.
fn take_global_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Strips a global `--flag VALUE` pair from anywhere on the line.
fn take_global(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    let value = match args.get(i + 1) {
        Some(v) => v.clone(),
        None => {
            eprintln!("missing value for {flag}");
            usage();
        }
    };
    args.drain(i..=i + 1);
    Some(value)
}

fn real_main(args: Vec<String>) -> Result<(), EarError> {
    match args.first().map(|s| s.as_str()) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(parse_flags(&args[1..]))?,
        Some("sweep") => cmd_sweep(&args[1..])?,
        Some("table") => cmd_table(args.get(1).map_or_else(|| usage(), |s| s.as_str()))?,
        Some("fig") => cmd_fig(args.get(1).map_or_else(|| usage(), |s| s.as_str()))?,
        Some("future") => print!("{}", ear::experiments::future_work::run_all_future_work()),
        Some("related") => print!("{}", ear::experiments::related_work::duf_comparison()),
        Some("surface") => {
            let flags = parse_flags(&args[1..]);
            let app = flags
                .get("app")
                .cloned()
                .unwrap_or_else(|| "BT-MZ.C (OpenMP)".to_string());
            if by_name(&app).is_none() {
                return Err(EarError::unknown("workload", app));
            }
            let s = ear::experiments::surface::measure_surface(&app, 77);
            print!("{}", ear::experiments::surface::render_surface(&s));
        }
        Some("conf") => print!("{}", render_ear_conf(&EarlConfig::default())),
        Some("all") => print!("{}", ear::experiments::run_all()),
        Some("bench") => cmd_bench(&args[1..])?,
        Some("serve") => cmd_serve(&args[1..])?,
        Some("loadgen") => cmd_loadgen(&args[1..])?,
        Some("cluster") => cmd_cluster(&args[1..])?,
        Some("jobstream") => cmd_jobstream(&args[1..])?,
        Some("powercap") => print!("{}", ear::experiments::run_powercap()),
        _ => usage(),
    }
    Ok(())
}

/// Drains the trace bus to `path` as JSONL. Runs after the subcommand even
/// when it failed, so a partial stream survives for debugging.
fn write_trace(path: &str) -> Result<(), EarError> {
    let records = ear::trace::drain();
    let dropped = ear::trace::dropped();
    std::fs::write(path, ear::trace::to_jsonl(&records)).map_err(|e| EarError::io(path, e))?;
    if dropped > 0 {
        eprintln!("earsim: trace ring overflowed, oldest {dropped} events lost");
    }
    eprintln!("earsim: wrote {} trace events to {path}", records.len());
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags: accepted anywhere on the line, stripped before the
    // subcommand parsers see the arguments.
    if let Some(v) = take_global(&mut args, "--jobs") {
        let n = match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--jobs expects a positive integer");
                usage();
            }
        };
        ear::experiments::set_default_jobs(n);
    }
    if let Some(v) = take_global(&mut args, "--mpi-break-even") {
        let n = match v.parse::<usize>() {
            Ok(n) => n,
            _ => {
                eprintln!("--mpi-break-even expects a non-negative integer");
                usage();
            }
        };
        // Outranks both EAR_MPI_BREAK_EVEN and the persisted calibration.
        ear::mpisim::breakeven::set_override(Some(n));
    }
    if let Some(model) = take_global(&mut args, "--model") {
        // Validate up front so a typo fails before hours of simulation.
        if let Err(e) = ModelRegistry::with_builtins().resolve(&model) {
            eprintln!("earsim: {e}");
            exit(1);
        }
        ear::experiments::set_default_model(&model);
    }
    let trace_path = take_global(&mut args, "--trace");
    if trace_path.is_some() {
        ear::trace::reset();
        ear::trace::set_enabled(true);
    }
    // Persistent result cache: on by default, off for `--no-cache` or
    // EAR_CACHE=0/off/false, and for `bench` (which must measure real
    // simulation work and manages its own store for the warm-cache bench).
    let no_cache_flag = take_global_flag(&mut args, "--no-cache");
    let no_cache_env = matches!(
        std::env::var("EAR_CACHE").as_deref().map(str::trim),
        Ok("0") | Ok("off") | Ok("false")
    );
    let is_bench = args.first().is_some_and(|a| a == "bench");
    if !(no_cache_flag || no_cache_env || is_bench) {
        ear::experiments::set_result_cache(Some(ear::experiments::default_cache_dir()));
    }

    let result = real_main(args);
    if let Some(path) = &trace_path {
        if let Err(e) = write_trace(path) {
            eprintln!("earsim: {e}");
            exit(1);
        }
    }
    if let Err(e) = result {
        eprintln!("earsim: {e}");
        exit(1);
    }
    // Machine-readable engine summary (stderr keeps stdout parseable).
    ear::experiments::print_process_summary();
}
