//! Writing a custom energy policy through EAR's plugin API.
//!
//! The paper stresses that "given that EARL defines a policy API and a
//! plugin mechanism, different policies can be easily evaluated". This
//! example implements a naive `fixed_budget` policy from scratch —
//! lower the CPU one pstate whenever measured DC power exceeds a budget,
//! raise it when there is headroom — registers it, and runs it.

use ear::archsim::Cluster;
use ear::core::policy::api::{
    NodeFreqs, PolicyCtx, PolicyRegistry, PolicySettings, PolicyState, PowerPolicy,
};
use ear::core::{EarDaemon, Earl, EarlConfig, Signature};
use ear::mpisim::run_job;
use ear::workloads::{build_job, by_name, calibrate};

/// A toy budget-tracking policy: one pstate step per signature.
#[derive(Debug, Default)]
struct FixedBudget {
    budget_w: f64,
    current: Option<usize>,
}

impl FixedBudget {
    fn new(budget_w: f64) -> Self {
        Self {
            budget_w,
            current: None,
        }
    }
}

impl PowerPolicy for FixedBudget {
    fn name(&self) -> &'static str {
        "fixed_budget"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        let cur = self.current.unwrap_or(ctx.settings.def_pstate);
        let next = if sig.dc_power_w > self.budget_w {
            (cur + 1).min(ctx.pstates.slowest())
        } else {
            cur.saturating_sub(1).max(ctx.settings.def_pstate)
        };
        self.current = Some(next);
        let freqs = NodeFreqs {
            cpu: next,
            imc_min_ratio: ctx.uncore_min_ratio,
            imc_max_ratio: ctx.uncore_max_ratio,
            imc_dom: ear::core::DomainLimits::LEGACY,
        };
        // Never converges: it keeps tracking the budget (EARL re-invokes
        // every signature because we return Continue).
        (freqs, PolicyState::Continue)
    }

    fn validate(&mut self, _sig: &Signature, _ctx: &PolicyCtx<'_>) -> bool {
        true
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

fn main() {
    // Register the plugin exactly as a sysadmin would drop a .so into
    // EAR's plugin directory.
    let mut registry = PolicyRegistry::with_builtins();
    registry.register("fixed_budget", || Box::new(FixedBudget::new(310.0)));
    println!("registered policies: {:?}\n", registry.names());

    let targets = by_name("SP-MZ.C (OpenMP)").expect("catalog");
    let cal = calibrate(&targets).expect("calibration");
    let job = build_job(&cal);
    let mut cluster = Cluster::new(cal.node_config.clone(), 1, 77);

    let config = EarlConfig {
        policy_name: "fixed_budget".into(),
        settings: PolicySettings::default(),
        ..Default::default()
    };
    let policy = registry.create("fixed_budget").expect("registered above");
    let earl = Earl::new(config, policy).expect("built-in model");
    // The daemon fronts the library: frequency requests travel as protocol
    // messages and come back granted (no powercap here, so pass-through).
    let mut rts = vec![EarDaemon::new(earl)];

    let report = run_job(&mut cluster, &job, &mut rts);
    println!(
        "{}: {:.1} s at {:.1} W average (budget 310 W)",
        targets.name,
        report.seconds(),
        report.avg_dc_power_w()
    );
    println!("\npolicy trajectory (CPU pstate over time):");
    for (t, f) in rts[0].inner().freq_changes() {
        println!(
            "  t={:7.1}s  pstate {} ({:.1} GHz)",
            t.as_secs(),
            f.cpu,
            cal.node_config.pstates.ghz(f.cpu)
        );
    }
}
