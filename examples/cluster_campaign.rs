//! A multi-job campaign with EAR's accounting service: run several of the
//! paper's applications back to back under the eUFS policy, collect per-job
//! records into the shared accounting database and print an `eacct`-style
//! report — the workflow a data-centre operator sees.

use ear::archsim::Cluster;
use ear::core::{accounting, EarDaemon, Earl, EarlConfig, PolicySettings};
use ear::mpisim::run_job;
use ear::workloads::{build_job, by_name, calibrate};

fn main() {
    let db = accounting::shared();
    let campaign = ["BQCD", "BT-MZ", "HPCG", "GROMACS (I)"];

    for (i, name) in campaign.iter().enumerate() {
        let targets = by_name(name).expect("catalog workload");
        let cal = calibrate(&targets).expect("calibration");
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 500 + i as u64);
        let config = EarlConfig {
            policy_name: "min_energy_eufs".to_string(),
            settings: PolicySettings::default(),
            ..Default::default()
        };
        let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
            .map(|_| EarDaemon::new(Earl::from_registry(config.clone()).expect("built-ins")))
            .collect();
        println!("running {name} on {} nodes…", targets.nodes);
        run_job(&mut cluster, &job, &mut rts);

        // EARL instances hold their job records; push node 0's (the paper
        // reports node-level metrics) into the accounting database.
        let mut db = accounting::lock(&db);
        for rt in &rts {
            if let Some(rec) = rt.inner().job_record() {
                db.insert(rec.clone());
                break; // one record per job, master node
            }
        }
    }

    println!("\n=== eacct report ===");
    let db = accounting::lock(&db);
    print!("{}", db.report());
    println!(
        "\ncampaign total: {:.1} MJ DC energy across {} jobs",
        db.total_energy_j() / 1e6,
        db.records().len()
    );
}
