//! Compare every policy (and the "No policy" baseline) on one application,
//! reproducing the paper's per-application evaluation layout.
//!
//! ```sh
//! cargo run --release --example policy_comparison -- HPCG
//! cargo run --release --example policy_comparison            # BT-MZ
//! ```

use ear::core::PolicySettings;
use ear::experiments::{compare, run_cell, run_matrix, RunKind};
use ear::workloads::by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BT-MZ".to_string());
    let Some(targets) = by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };

    println!("policy comparison for {name} ({} nodes)\n", targets.nodes);

    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        (
            "monitoring".to_string(),
            RunKind::Policy {
                name: "monitoring".into(),
                settings: PolicySettings::default(),
            },
        ),
        ("min_energy (ME)".to_string(), RunKind::me(0.05)),
        ("ME+eU (paper)".to_string(), RunKind::me_eufs(0.05, 0.02)),
        ("ME+NG-U".to_string(), RunKind::me_ng_u(0.05, 0.02)),
        (
            "min_time".to_string(),
            RunKind::Policy {
                name: "min_time".into(),
                settings: PolicySettings {
                    def_pstate: 4,
                    ..Default::default()
                },
            },
        ),
        (
            "min_time+eU".to_string(),
            RunKind::Policy {
                name: "min_time_eufs".into(),
                settings: PolicySettings {
                    def_pstate: 4,
                    ..Default::default()
                },
            },
        ),
    ];
    let results = run_matrix(&targets, &cells, 3, 99);

    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>8} {:>8} | {:>9} {:>11} {:>11}",
        "config",
        "time (s)",
        "power (W)",
        "energy (kJ)",
        "CPU GHz",
        "IMC GHz",
        "time pen",
        "power save",
        "energy save"
    );
    let reference = results[0].clone();
    for r in &results {
        let c = compare(&reference, r);
        println!(
            "{:<16} {:>9.1} {:>9.1} {:>10.0} {:>8.2} {:>8.2} | {:>8.2}% {:>10.2}% {:>10.2}%",
            r.label,
            r.time_s,
            r.dc_power_w,
            r.dc_energy_j / 1e3,
            r.avg_cpu_ghz,
            r.avg_imc_ghz,
            c.time_penalty_pct,
            c.power_saving_pct,
            c.energy_saving_pct,
        );
    }

    // A quick threshold-sensitivity scan, mirroring the paper's Fig. 3/4.
    println!("\nunc_policy_th sensitivity (ME+eU, cpu_policy_th 5%):");
    for th in [0.0, 0.01, 0.02, 0.03] {
        let r = run_cell(&targets, &RunKind::me_eufs(0.05, th), "sweep", 3, 99);
        let c = compare(&reference, &r);
        println!(
            "  th={:>3.0}%: time penalty {:>5.2}%, energy save {:>5.2}%, final IMC {:.2} GHz",
            th * 100.0,
            c.time_penalty_pct,
            c.energy_saving_pct,
            r.avg_imc_ghz
        );
    }
}
