//! Quickstart: run one application under EARL with the paper's
//! `min_energy_to_solution` + explicit UFS policy and watch it converge.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ear::archsim::Cluster;
use ear::core::{EarDaemon, Earl, EarlConfig, PolicySettings};
use ear::mpisim::run_job;
use ear::workloads::{build_job, by_name, calibrate};

fn main() {
    // 1. Pick a workload from the paper's catalog — BT-MZ class D, the
    //    CPU-bound NAS kernel on four nodes.
    let targets = by_name("BT-MZ").expect("catalog workload");
    let calibrated = calibrate(&targets).expect("calibration");
    let job = build_job(&calibrated);
    println!(
        "workload: {} ({} nodes × {} ranks, {} outer iterations)",
        targets.name, targets.nodes, targets.ranks_per_node, targets.iterations
    );

    // 2. Boot a simulated cluster of the paper's Lenovo SD530 nodes.
    let mut cluster = Cluster::new(calibrated.node_config.clone(), targets.nodes, 2024);

    // 3. Attach one EARL instance per node, running min_energy_to_solution
    //    with explicit uncore selection (cpu_policy_th 5 %, unc_policy_th
    //    2 % — the paper's defaults).
    let config = EarlConfig {
        policy_name: "min_energy_eufs".to_string(),
        settings: PolicySettings::default(),
        ..Default::default()
    };
    let mut runtimes: Vec<EarDaemon<Earl>> = (0..targets.nodes)
        .map(|_| EarDaemon::new(Earl::from_registry(config.clone()).expect("built-ins")))
        .collect();

    // 4. Run the job: the driver delivers every MPI call to EARL (the PMPI
    //    interception path), EARL detects the loop with DynAIS, computes
    //    signatures and drives the policy.
    let report = run_job(&mut cluster, &job, &mut runtimes);

    println!("\njob finished in {:.1} s (simulated)", report.seconds());
    println!("avg DC node power: {:.1} W", report.avg_dc_power_w());
    println!("avg CPU frequency: {:.2} GHz", report.avg_cpu_ghz());
    println!("avg IMC frequency: {:.2} GHz", report.avg_imc_ghz());

    // 5. Inspect what EARL did on node 0 (through its node daemon).
    let earl = runtimes[0].inner();
    println!(
        "\nEARL on node 0 computed {} signatures:",
        earl.signatures().len()
    );
    for (i, sig) in earl.signatures().iter().enumerate().take(8) {
        println!(
            "  sig {i}: window {:5.1} s  CPI {:.3}  {:6.2} GB/s  {:5.1} W  imc {:.2} GHz",
            sig.window_s,
            sig.cpi,
            sig.gbs,
            sig.dc_power_w,
            sig.avg_imc_khz * 1e-6,
        );
    }
    println!("\nfrequency decisions:");
    for (t, f) in earl.freq_changes() {
        println!(
            "  t={:8.1}s  cpu pstate {}  uncore limits [{:.1}, {:.1}] GHz",
            t.as_secs(),
            f.cpu,
            f.imc_min_ratio as f64 * 0.1,
            f.imc_max_ratio as f64 * 0.1,
        );
    }
    let record = earl.job_record().expect("record");
    println!(
        "\naccounting: {:.0} J DC energy, {} signatures, {} frequency changes",
        record.dc_energy_j, record.signatures, record.freq_changes
    );
}
