//! EAR's energy-control service: keep a small cluster under a power budget
//! while jobs run, redistributing per-node caps by demand.
//!
//! This demonstrates the [`PowercapController`] mechanism on top of the
//! same simulated nodes the optimisation policies use.

use ear::archsim::{Cluster, NodeConfig, PhaseDemand};
use ear::core::manager;
use ear::core::powercap::{distribute_budget, PowercapController};

fn main() {
    let nodes = 4;
    let budget_w = 1150.0; // below the ~1320 W the cluster wants
    let mut cluster = Cluster::new(NodeConfig::sd530_6148(), nodes, 3);
    let mut caps: Vec<PowercapController> = (0..nodes)
        .map(|i| PowercapController::new(cluster.node(i), budget_w / nodes as f64))
        .collect();

    // A demanding compute phase on every node.
    let demand = PhaseDemand {
        instructions: 4e10,
        mem_bytes: 10e9,
        cpi_core: 0.4,
        active_cores: 40,
        ..Default::default()
    };

    println!("cluster budget {budget_w:.0} W over {nodes} nodes\n");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>22}",
        "epoch", "cluster (W)", "budget (W)", "status", "per-node caps (W)"
    );

    let mut last_energy = vec![0.0f64; nodes];
    let mut last_time = vec![0.0f64; nodes];
    for epoch in 0..12 {
        // Run one phase per node under the current frequency ceilings.
        for (i, cap) in caps.iter().enumerate() {
            let node = cluster.node_mut(i);
            manager::apply_freqs(node, &cap.ceiling()).expect("valid ceiling");
            node.run_phase(&demand);
        }
        // Measure per-node average power over the epoch.
        let mut powers = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let node = cluster.node(i);
            let e = node.dc_energy_exact_j();
            let t = node.now().as_secs();
            let p = (e - last_energy[i]) / (t - last_time[i]).max(1e-9);
            last_energy[i] = e;
            last_time[i] = t;
            powers.push(p);
        }
        let cluster_power: f64 = powers.iter().sum();

        // Redistribute the budget by demand and evaluate each controller.
        let assigned = distribute_budget(budget_w, &powers);
        let mut throttled = 0;
        for ((cap, &assigned_w), &power) in caps.iter_mut().zip(&assigned).zip(&powers) {
            cap.set_cap_w(assigned_w);
            if cap.evaluate(power) == ear::core::CapAction::Throttled {
                throttled += 1;
            }
        }
        let status = if cluster_power > budget_w {
            format!("over, throttling {throttled}")
        } else {
            "within budget".to_string()
        };
        let caps_str = assigned
            .iter()
            .map(|c| format!("{c:.0}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{epoch:>5} {cluster_power:>12.1} {budget_w:>12.1} {status:>10} {caps_str:>22}");
    }

    println!("\nThe controllers throttle the uncore first (the paper's insight: it is");
    println!("the cheapest watt), then the CPU pstate, until the cluster complies.");
}
