//! A day in the life of a small cluster: a mixed batch queue where half
//! the users opted into EAR, run through the SLURM-style scheduler with
//! per-job `--ear` flags, ending with the campaign energy bill.

use ear::archsim::NodeConfig;
use ear::sched::BatchScheduler;

fn main() {
    // A 16-node partition of the paper's SD530 machines.
    let mut sched = BatchScheduler::new(NodeConfig::sd530_6148(), 16, 777);

    let submissions = [
        ("alice", "BT-MZ", "--ear=on --ear-unc-th=0.02"),
        ("bob", "HPCG", "--ear=off"),
        ("carol", "BQCD", "--ear=on --ear-policy-th=0.03"),
        ("alice", "GROMACS (I)", "--ear=on"),
        ("dave", "HPCG", "--ear=on"),
        ("bob", "BT-MZ", "--ear=off"),
        ("erin", "GROMACS (II)", "--ear=on --ear-imc-search=hw"),
        ("carol", "BQCD", "--ear=off"),
    ];
    for (i, (user, workload, flags)) in submissions.iter().enumerate() {
        let id = sched
            .submit(user, workload, flags, i as f64 * 30.0)
            .unwrap_or_else(|e| panic!("submit failed: {e}"));
        println!("submitted job {id}: {user} / {workload} {flags}");
    }

    println!("\nrunning the queue…\n");
    sched.run_all().expect("queue runs");

    println!(
        "{:>3} {:<7} {:<14} {:>8} {:>8} {:>11} {:>12}  EAR",
        "id", "user", "workload", "start", "end", "energy (MJ)", "avg power(W)"
    );
    for f in sched.finished() {
        let avg_w = f.dc_energy_j / (f.end_s - f.start_s) / f.nodes.len() as f64;
        println!(
            "{:>3} {:<7} {:<14} {:>8.0} {:>8.0} {:>11.2} {:>12.1}  {}",
            f.job.id,
            f.job.user,
            f.job.workload,
            f.start_s,
            f.end_s,
            f.dc_energy_j / 1e6,
            avg_w,
            if f.record.is_some() { "on" } else { "off" },
        );
    }

    println!("\n=== EAR accounting (eacct) — EAR-enabled jobs only ===");
    print!("{}", sched.accounting().report());

    let total_mj = sched.total_energy_j() / 1e6;
    println!(
        "\ncampaign: {} jobs, makespan {:.0} s, total {total_mj:.1} MJ",
        sched.finished().len(),
        sched.makespan_s()
    );

    // Pair up the identical workloads run with and without EAR.
    println!("\nEAR on/off deltas on identical workloads:");
    for name in ["BT-MZ", "HPCG", "BQCD"] {
        let runs: Vec<_> = sched
            .finished()
            .iter()
            .filter(|f| f.job.workload == name)
            .collect();
        if let [a, b] = runs.as_slice() {
            let (on, off) = if a.record.is_some() { (a, b) } else { (b, a) };
            let delta = (1.0 - on.dc_energy_j / off.dc_energy_j) * 100.0;
            println!("  {name:<14} energy saving with EAR: {delta:.1}%");
        }
    }
}
