//! The paper's motivation experiment (§II, Fig. 1) on a workload of your
//! choice: pin the uncore frequency at each value from 2.4 GHz down to
//! 1.2 GHz and compare time/power/energy against the hardware's own UFS.
//!
//! ```sh
//! cargo run --release --example uncore_sweep -- "HPCG"
//! cargo run --release --example uncore_sweep            # defaults to BT-MZ
//! ```

use ear::experiments::{compare, run_cell, RunKind};
use ear::workloads::by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BT-MZ".to_string());
    let Some(targets) = by_name(&name) else {
        eprintln!("unknown workload '{name}'; available:");
        for w in ear::workloads::full_catalog() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    };

    println!("uncore sweep for {name} at nominal CPU frequency\n");

    // Reference: hardware UFS (the firmware picks the uncore frequency).
    let reference = run_cell(
        &targets,
        &RunKind::Fixed {
            cpu: 1,
            imc_ratio: None,
        },
        "HW UFS",
        3,
        7,
    );
    println!(
        "reference (HW UFS): {:.1} s, {:.1} W, avg IMC {:.2} GHz",
        reference.time_s, reference.dc_power_w, reference.avg_imc_ghz
    );
    println!(
        "\n{:>9}  {:>9}  {:>11}  {:>11}  {:>9}",
        "IMC (GHz)", "time pen", "power save", "energy save", "GB/s pen"
    );
    for ratio in (12..=24u8).rev() {
        let r = run_cell(
            &targets,
            &RunKind::Fixed {
                cpu: 1,
                imc_ratio: Some(ratio),
            },
            "fixed",
            3,
            7,
        );
        let c = compare(&reference, &r);
        println!(
            "{:>9.1}  {:>8.2}%  {:>10.2}%  {:>10.2}%  {:>8.2}%",
            ratio as f64 * 0.1,
            c.time_penalty_pct,
            c.power_saving_pct,
            c.energy_saving_pct,
            c.gbs_penalty_pct
        );
    }
    println!(
        "\nReading the table: for CPU-bound codes the power saving grows much \
         faster than the time penalty as the uncore drops — that headroom is \
         what the paper's explicit UFS policy harvests. Near the bottom of \
         the range the penalty catches up (the paper's §II observation)."
    );
}
