//! EAR's installation-time learning phase: fit the energy-model
//! coefficients for this "cluster" by running the benchmark suite at
//! several frequencies, then verify the learned model drives the same
//! policy decisions as the shipped defaults.

use ear::archsim::NodeConfig;
use ear::core::models::{learn_model_params, Avx512Model, DefaultModel, ModelParams};
use ear::core::policy::api::{PolicyCtx, PolicySettings};
use ear::core::policy::min_energy::select_min_energy_pstate;
use ear::core::Signature;

fn main() {
    let cfg = NodeConfig::sd530_6148();
    println!("learning energy-model coefficients for: {}\n", cfg.name);
    println!("running the benchmark sweep (pstates 1..9 × memory intensities)…");
    let learned = learn_model_params(&cfg, 42);
    let defaults = ModelParams::for_node(&cfg);

    println!(
        "\n{:<22} {:>12} {:>12}",
        "coefficient", "learned", "shipped"
    );
    println!(
        "{:<22} {:>12.1} {:>12.1}",
        "static power (W)", learned.static_power_w, defaults.static_power_w
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "share coef c", learned.share_coef, defaults.share_coef
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "share exp q", learned.share_exp, defaults.share_exp
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "power exponent α", learned.power_exp, defaults.power_exp
    );

    // Decision equivalence on the paper's two application classes.
    let pstates = cfg.pstates.clone();
    let settings = PolicySettings::default();
    let signatures = [
        ("BT-MZ-like (cpu bound)", 0.38, 6.6, 320.0),
        ("BQCD-like (cpu bound)", 0.68, 11.0, 302.0),
        ("POP-like (memory bound)", 0.72, 100.7, 347.0),
        ("HPCG-like (memory bound)", 3.13, 177.0, 340.0),
    ];
    println!("\nmin_energy selections (learned vs shipped):");
    for (name, cpi, gbs, power) in signatures {
        let sig = Signature {
            window_s: 10.0,
            iterations: 5,
            cpi,
            tpi: 0.01,
            gbs,
            vpi: 0.02,
            dc_power_w: power,
            pkg_power_w: power * 0.72,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Signature::default()
        };
        let pick = |params: ModelParams| {
            let model = Avx512Model::new(DefaultModel { params });
            let ctx = PolicyCtx {
                pstates: &pstates,
                uncore_min_ratio: cfg.uncore_min_ratio,
                uncore_max_ratio: cfg.uncore_max_ratio,
                uncore_domains: 1,
                model: &model,
                settings: &settings,
            };
            select_min_energy_pstate(&sig, 1, &ctx)
        };
        let a = pick(learned.clone());
        let b = pick(defaults.clone());
        println!(
            "  {name:<26} learned → {:.1} GHz   shipped → {:.1} GHz   {}",
            pstates.ghz(a),
            pstates.ghz(b),
            if a == b { "(same)" } else { "(differ)" }
        );
    }
}
