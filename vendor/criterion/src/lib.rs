//! Vendored mini `criterion`: the subset of the real crate's API this
//! workspace's `[[bench]]` targets use, reimplemented dependency-free so
//! the dev graph resolves without registry access.
//!
//! Measurement model: each benchmark body runs for a short warm-up, then
//! for a fixed number of timed samples of adaptively chosen batch size;
//! the reported figure is the **minimum** mean-per-iteration across
//! samples (least-noise estimator, same choice as the repo's own
//! `bench.rs`). Results print one line per benchmark; there are no
//! reports, baselines or statistics beyond that.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement. The mini harness
/// treats every variant the same way: one setup per routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group; recorded so per-element
/// figures can be derived from the printed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark body.
pub struct Bencher {
    samples: usize,
    warmup: Duration,
    best_ns_per_iter: f64,
}

impl Bencher {
    fn new(samples: usize, warmup: Duration) -> Self {
        Self {
            samples,
            warmup,
            best_ns_per_iter: f64::INFINITY,
        }
    }

    /// Times `routine` repeatedly; the measured figure is the minimum
    /// mean-per-iteration over the sample batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a batch-size estimate targeting ~1 ms per sample.
        let t0 = Instant::now();
        let mut calls: u64 = 0;
        while t0.elapsed() < self.warmup || calls == 0 {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = t0.elapsed().as_secs_f64() / calls as f64;
        let batch = ((1e-3 / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine
    /// is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let t0 = Instant::now();
        let mut calls: u64 = 0;
        while t0.elapsed() < self.warmup || calls == 0 {
            let input = setup();
            std::hint::black_box(routine(input));
            calls += 1;
        }

        for _ in 0..self.samples {
            let mut total = Duration::ZERO;
            let batch = 8u64;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                total += t.elapsed();
            }
            let ns = total.as_secs_f64() * 1e9 / batch as f64;
            self.best_ns_per_iter = self.best_ns_per_iter.min(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver: runs bodies and prints one line per benchmark.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 12,
            warmup: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.warmup);
        f(&mut b);
        println!("bench {:<44} {}", id, format_ns(b.best_ns_per_iter));
        self
    }

    /// Opens a named group; the mini harness only uses the name as a
    /// prefix on the printed lines.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotates per-iteration throughput (recorded, not printed).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples, self.criterion.warmup);
        f(&mut b);
        println!("bench {:<44} {}", id, format_ns(b.best_ns_per_iter));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one name, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point: runs every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_finite() {
        let mut b = Bencher::new(3, Duration::from_millis(1));
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.best_ns_per_iter.is_finite());
        assert!(b.best_ns_per_iter >= 0.0);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut b = Bencher::new(3, Duration::from_millis(1));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.best_ns_per_iter.is_finite());
    }

    #[test]
    fn groups_inherit_and_override_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(2).throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| 1));
        g.finish();
    }
}
