//! Vendored mini `proptest`: the subset of the real crate's API this
//! workspace uses, reimplemented dependency-free so the dev graph
//! resolves without registry access.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` randomly
//! generated cases from a deterministic per-test seed (derived from the
//! test's name, so failures reproduce run to run). There is no shrinking:
//! a failing case reports its inputs' case index and the assertion
//! message, nothing more. Strategies are plain samplers — ranges, tuples,
//! `Just`, `prop_map`, `prop_oneof!` and `collection::vec` — which covers
//! every strategy expression in this repository's property tests.

#![warn(missing_docs)]

pub mod strategy {
    //! Value strategies: samplers composable with `prop_map`.

    use crate::test_runner::TestRng;

    /// A source of random values of one type. Unlike real proptest there
    /// is no intermediate value tree (no shrinking), so a strategy is
    /// just a sampler.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Boxes a strategy into a homogeneous option list; the shared `Vec`
    /// unifies the arms' value types (so `Just(64)` in a `usize` union
    /// infers `usize`, as with real proptest's `TupleUnion`).
    pub fn push_boxed<S: Strategy + 'static>(
        options: &mut Vec<Box<dyn Strategy<Value = S::Value>>>,
        strategy: S,
    ) {
        options.push(Box::new(strategy));
    }

    /// Uniform choice between boxed strategies of one value type; built
    /// by the `prop_oneof!` macro.
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics on an empty option list (a test
        /// authoring bug).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite values across a wide dynamic range; real proptest
            // also emits NaN/inf, but no test here relies on that.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(61) as i32 - 30) as f64;
            mantissa * exp.exp2()
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from a non-empty list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec`s of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                let span = (self.size.end - self.size.start) as u64;
                self.size.start + rng.below(span) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop's configuration and deterministic RNG.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// xorshift64* generator, seeded from the test's name so every run of
    /// a test draws the same cases (failures reproduce without a seed
    /// file).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name; avoid the all-zero state.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h | 1 }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform draw in `[0, bound)`; `bound` 0 yields 0. The modulo
        /// bias is irrelevant at test-strategy scales.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform draw in `[0, 1)` with 53 significant bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! The glob import the tests use: traits, entry points and macros.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each contained `#[test] fn name(arg in strategy, ...) { .. }` over
/// randomly drawn cases. An optional leading
/// `#![proptest_config(expr)]` sets the case count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest {}: case {} of {} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

/// Property-test assertion: fails the current case with the condition (or
/// a formatted message) instead of unwinding mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform union of strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut options = ::std::vec::Vec::new();
        $($crate::strategy::push_boxed(&mut options, $strat);)+
        $crate::strategy::OneOf::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u8..=7, b in -5i64..5, f in 0.25..0.75f64) {
            prop_assert!((3..=7).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in crate::collection::vec(0u64..8, 2..5),
            w in prop_oneof![Just(16usize), Just(64)],
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 8));
            prop_assert!(w == 16 || w == 64);
            // Exercise a sampled bool either way it lands.
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn prop_map_applies(x in (1u32..10, 1u32..10).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..100).contains(&x), "product {} out of range", x);
        }
    }
}
